(* Structure-of-arrays 4-ary min-heap keyed by (time, seq).

   The simulator executes millions of events per run, so the event queue's
   per-entry cost decides the engine's throughput. Two layout decisions
   drive the design:

   - Entries are parallel channels (an unboxed [float array] of times plus
     [int array]s) instead of an array of records, so sifting moves machine
     words without allocating.

   - Payloads (and their aux ints) never move during a sift. Each entry
     owns a stable slot in [values]/[auxs]; the heap permutes only the
     [slots : int array] channel. A generic ['a array] store compiles to
     a [caml_modify] write barrier, which costs more than every comparison
     in the sift combined — with the indirection, the barrier is paid once
     per push instead of once per level, and the sift itself touches only
     unboxed arrays.

   The tree is 4-ary (children of [i] are [4i+1 .. 4i+4]): half the depth
   of a binary heap means half the channel moves per sift, and the wider
   min-child scan stays within one cache line per node. (time, seq) keys
   are totally ordered in the engine (seq is a unique stamp), so the pop
   sequence is independent of arity and internal layout — rewriting the
   sift strategy cannot perturb event order.

   The hot-path API ([min_time]/[min_seq]/[min_aux]/[pop_unsafe]) never
   allocates; the option-returning entry points ([pop_min]/[peek_time])
   remain for callers off the hot path. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable slots : int array; (* heap position -> index into [values] *)
  mutable values : 'a array; (* slot -> payload; stable across sifts *)
  mutable auxs : int array; (* slot -> aux; stable across sifts *)
  mutable free : int array; (* stack of recycled slots *)
  mutable n_free : int;
  mutable size : int;
}

(* Placeholder for empty payload slots. An immediate, so [Array.make] never
   builds a flat float array even at ['a = float], keeping the generic
   reads/writes below representation-correct for every ['a]. *)
let dummy : 'a = Obj.magic 0

(* Invariant: [times.(0) = infinity] whenever the heap is empty (capacity
   is never 0). This lets [min_time] be a branch-free unboxed load with no
   float constant in its body — Closure-mode ocamlopt refuses to inline a
   function whose body contains a structured constant (such as a boxed
   [infinity]) across modules, and a non-inlined [min_time] boxes its
   float return on every dispatch. *)
let initial_capacity = 16

let create () =
  let times = Array.make initial_capacity 0.0 in
  times.(0) <- infinity;
  {
    times;
    seqs = Array.make initial_capacity 0;
    auxs = Array.make initial_capacity 0;
    slots = Array.make initial_capacity 0;
    values = Array.make initial_capacity dummy;
    free = Array.make initial_capacity 0;
    n_free = 0;
    size = 0;
  }

let length t = t.size

let[@inline] is_empty t = t.size = 0

(* Key of the minimum entry, readable without popping and without
   allocating (callers compare the float directly; [infinity] when
   empty, by the emptiness invariant on [times.(0)]). *)
let[@inline] min_time t = Array.unsafe_get t.times 0

let[@inline] min_seq t = if t.size = 0 then -1 else Array.unsafe_get t.seqs 0

let[@inline] min_aux t =
  if t.size = 0 then 0
  else Array.unsafe_get t.auxs (Array.unsafe_get t.slots 0)

let grow t =
  let capacity = Array.length t.times in
  let new_capacity = capacity * 2 in
  let times = Array.make new_capacity 0.0 in
  let seqs = Array.make new_capacity 0 in
  let auxs = Array.make new_capacity 0 in
  let slots = Array.make new_capacity 0 in
  let values = Array.make new_capacity dummy in
  let free = Array.make new_capacity 0 in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.slots 0 slots 0 t.size;
  Array.blit t.values 0 values 0 (Array.length t.values);
  Array.blit t.auxs 0 auxs 0 (Array.length t.auxs);
  Array.blit t.free 0 free 0 t.n_free;
  t.times <- times;
  t.seqs <- seqs;
  t.slots <- slots;
  t.values <- values;
  t.auxs <- auxs;
  t.free <- free

let arity = 4

(* Hole-sift the entry freshly written at [i0] toward the root. Out of
   line because Closure-mode ocamlopt never inlines a function containing
   a loop — but it takes no float argument: the key is re-read from the
   unboxed [times] channel, so the caller's [time] never has to cross a
   call boundary (which would box it). *)
let sift_up t i0 =
  let times = t.times and seqs = t.seqs in
  let slots = t.slots in
  let time = Array.unsafe_get times i0 in
  let seq = Array.unsafe_get seqs i0 in
  let slot = Array.unsafe_get slots i0 in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / arity in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set slots !i (Array.unsafe_get slots parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set slots !i slot

(* Loop-free push prologue, inlinable even without flambda: the [time]
   float flows straight into an unboxed [float array] store, so an
   inlined call site pays no boxing at all. The sift itself runs out of
   line on the flat channels (see [sift_up]). *)
let[@inline] push_aux t ~time ~seq ~aux value =
  if t.size = Array.length t.times then grow t;
  (* Slot bookkeeping: live slots always number [size], so when the free
     stack is empty, slot [size] is untouched and fresh. *)
  let slot =
    if t.n_free > 0 then begin
      let nf = t.n_free - 1 in
      t.n_free <- nf;
      Array.unsafe_get t.free nf
    end
    else t.size
  in
  Array.unsafe_set t.values slot value;
  Array.unsafe_set t.auxs slot aux;
  let i = t.size in
  t.size <- i + 1;
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.slots i slot;
  if i > 0 then sift_up t i

let[@inline] push t ~time ~seq ?(aux = 0) value =
  push_aux t ~time ~seq ~aux value

(* Engine dispatch protocol. The engine's clock rides a caller-owned
   [float array] — cell 0 is "now", cell 1 the run limit — so event times
   never cross the module boundary as bare floats. That matters because
   dune's dev profile compiles with [-opaque], which disables cross-module
   inlining entirely: an ordinary [min_time]/[push ~time] pair would box
   two floats per dispatched event there, however aggressively the
   callees are annotated. *)

(* [advance_if_due t clock] : when the heap is nonempty and its min time
   is within [clock.(1)], write the min time into [clock.(0)] and return
   [true]; the caller then reads [min_aux] and pops. *)
let advance_if_due t clock =
  if t.size = 0 then false
  else begin
    let time = Array.unsafe_get t.times 0 in
    if time <= Array.unsafe_get clock 1 then begin
      Array.unsafe_set clock 0 time;
      true
    end
    else false
  end

(* [push_after t ~clock ~after ~seq ~aux v] inserts at [clock.(0) +.
   after]. The addition happens on this side of the call boundary, so a
   scheduling site never boxes a freshly computed event time — its
   [after] argument is typically an already-boxed float it merely
   forwards (a closure capture or an effect payload). *)
let push_after t ~clock ~after ~seq ~aux value =
  assert (after >= 0.0);
  push_aux t ~time:(Array.unsafe_get clock 0 +. after) ~seq ~aux value

(* Remove the minimum entry and return its payload without allocating.
   Read [min_time]/[min_seq]/[min_aux] first if the key is needed. *)
let pop_unsafe t =
  let n = t.size - 1 in
  if n < 0 then invalid_arg "Heap.pop_unsafe: empty heap";
  let times = t.times and seqs = t.seqs in
  let slots = t.slots in
  let root_slot = Array.unsafe_get slots 0 in
  (* The popped payload is left in its slot rather than cleared: clearing
     a generic ['a array] cell is a [caml_modify] per pop, and the stale
     reference lives only until the slot is reused (the free stack is
     LIFO) — the same bounded retention the previous record-array layout
     had. [clear] drops the whole array. *)
  let root = Array.unsafe_get t.values root_slot in
  let nf = t.n_free in
  Array.unsafe_set t.free nf root_slot;
  t.n_free <- nf + 1;
  t.size <- n;
  if n = 0 then Array.unsafe_set times 0 infinity
  else begin
    (* Sift the displaced last entry down from the root as a hole. The
       min-child comparisons are written out inline: the non-flambda
       compiler does not reliably inline a comparison helper here, and an
       out-of-line call per child costs more than the whole sift. *)
    let time = Array.unsafe_get times n in
    let seq = Array.unsafe_get seqs n in
    let slot = Array.unsafe_get slots n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let first = (arity * !i) + 1 in
      if first >= n then continue := false
      else begin
        (* Smallest of the up-to-four children. *)
        let c = ref first in
        let ct = ref (Array.unsafe_get times first) in
        let last = if first + 3 < n then first + 3 else n - 1 in
        for j = first + 1 to last do
          let jt = Array.unsafe_get times j in
          if
            jt < !ct
            || (jt = !ct && Array.unsafe_get seqs j < Array.unsafe_get seqs !c)
          then begin
            c := j;
            ct := jt
          end
        done;
        let c = !c in
        let ct = !ct in
        if ct < time || (ct = time && Array.unsafe_get seqs c < seq) then begin
          Array.unsafe_set times !i ct;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set slots !i (Array.unsafe_get slots c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set times !i time;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set slots !i slot
  end;
  root

let pop_min t =
  if t.size = 0 then None
  else begin
    let time = Array.unsafe_get t.times 0 in
    let seq = Array.unsafe_get t.seqs 0 in
    let value = pop_unsafe t in
    Some (time, seq, value)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  (* O(1) reset; dropping the backing arrays also releases the payloads'
     closures to the GC, which matters when a crash discards a large
     event backlog. Fresh minimal arrays keep the emptiness invariant
     ([times.(0) = infinity], capacity > 0). *)
  let times = Array.make initial_capacity 0.0 in
  times.(0) <- infinity;
  t.times <- times;
  t.seqs <- Array.make initial_capacity 0;
  t.slots <- Array.make initial_capacity 0;
  t.values <- Array.make initial_capacity dummy;
  t.auxs <- Array.make initial_capacity 0;
  t.free <- Array.make initial_capacity 0;
  t.n_free <- 0;
  t.size <- 0
