module Ivar = struct
  type 'a state = Empty of (unit -> unit) Queue.t | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        Queue.iter (fun resume -> resume ()) waiters

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty waiters -> (
        Engine.suspend (fun resume -> Queue.add resume waiters);
        match t.state with
        | Full v -> v
        | Empty _ -> assert false)

  let read_with_timeout t d =
    match t.state with
    | Full v -> Some v
    | Empty waiters ->
        (* [cell] holds the continuation only while the fill/timeout race
           is undecided; whichever side fires first takes it, so the
           loser's copy of [once] retains nothing and resumes nobody. *)
        let cell = ref None in
        let once () =
          match !cell with
          | None -> ()
          | Some resume ->
              cell := None;
              resume ()
        in
        Engine.suspend (fun resume ->
            cell := Some resume;
            Queue.add once waiters;
            Engine.schedule (Engine.current ()) ~after:d once);
        (* The race is decided. If the timeout won, the ivar is still
           empty and our dead waiter would sit in its queue forever —
           drop it so long-lived ivars don't accumulate closures. (If the
           fill won, the whole queue was discarded with the state switch,
           and the timer event left in the heap is an empty no-op.) *)
        (match t.state with
        | Empty waiters ->
            let keep = Queue.create () in
            Queue.iter (fun w -> if w != once then Queue.add w keep) waiters;
            Queue.clear waiters;
            Queue.transfer keep waiters
        | Full _ -> ());
        peek t

  let waiters t =
    match t.state with Full _ -> 0 | Empty q -> Queue.length q
end

module Mailbox = struct
  type 'a t = {
    messages : 'a Queue.t;
    waiters : (unit -> unit) Queue.t;
  }

  let create () = { messages = Queue.create (); waiters = Queue.create () }

  let send t v =
    Queue.add v t.messages;
    match Queue.take_opt t.waiters with
    | None -> ()
    | Some resume -> resume ()

  let try_recv t = Queue.take_opt t.messages

  let rec recv t =
    match Queue.take_opt t.messages with
    | Some v -> v
    | None ->
        Engine.suspend (fun resume -> Queue.add resume t.waiters);
        (* Another receiver woken at the same instant may have taken the
           message; retry until one is really available. *)
        recv t

  let length t = Queue.length t.messages

  let is_empty t = Queue.is_empty t.messages
end

module Semaphore = struct
  type t = {
    mutable permits : int;
    waiters : (unit -> unit) Queue.t;
  }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create: negative permits";
    { permits = n; waiters = Queue.create () }

  let rec acquire t =
    if t.permits > 0 then t.permits <- t.permits - 1
    else begin
      Engine.suspend (fun resume -> Queue.add resume t.waiters);
      acquire t
    end

  let try_acquire t =
    if t.permits > 0 then begin
      t.permits <- t.permits - 1;
      true
    end
    else false

  let release t =
    t.permits <- t.permits + 1;
    match Queue.take_opt t.waiters with
    | None -> ()
    | Some resume -> resume ()

  let available t = t.permits
end

module Mutex = struct
  type t = Semaphore.t

  let create () = Semaphore.create 1

  let with_lock t f =
    Semaphore.acquire t;
    Fun.protect ~finally:(fun () -> Semaphore.release t) f
end

module Latch = struct
  type t = {
    mutable remaining : int;
    done_ : unit Ivar.t;
  }

  let create n =
    if n < 0 then invalid_arg "Latch.create: negative count";
    let t = { remaining = n; done_ = Ivar.create () } in
    if n = 0 then Ivar.fill t.done_ ();
    t

  let arrive t =
    if t.remaining <= 0 then invalid_arg "Latch.arrive: already released";
    t.remaining <- t.remaining - 1;
    if t.remaining = 0 then Ivar.fill t.done_ ()

  let wait t = Ivar.read t.done_
end
