(** Byte-addressable non-volatile memory region.

    Models Optane DCPMM semantics as seen from software:

    - loads and stores are synchronous CPU accesses charged to the calling
      thread at the device's latency/bandwidth (through a shared pipeline,
      so NVM's limited bandwidth shows up under concurrency);
    - stores land in the (volatile) CPU cache and only become durable after
      an explicit {!persist} ([clwb]+[sfence]) of the containing cache
      lines;
    - {!crash} discards every line that was written but not persisted,
      which is exactly the failure model Prism's backward/forward pointer
      protocol defends against (§5.5).

    The region keeps two images: the volatile view that normal reads see,
    and the durable image that survives {!crash}. *)

type t

(** [create engine ~spec ~size] allocates a zeroed region of [size] bytes
    backed by a device with [spec]'s timing. *)
val create :
  Prism_sim.Engine.t ->
  ?cost:Prism_device.Cost.t ->
  spec:Prism_device.Spec.t ->
  size:int ->
  unit ->
  t

val size : t -> int

(** Bytes of the region currently in use, as tracked by {!note_alloc};
    purely an accounting aid for the NVM-footprint experiment. *)
val allocated : t -> int

val note_alloc : t -> int -> unit

(** [read t ~off ~len] returns a copy of the volatile view. Charges the
    calling thread one NVM read access of [len] bytes. *)
val read : t -> off:int -> len:int -> bytes

(** [write t ~off src] stores [src] at [off] in the volatile view and marks
    the lines dirty. Charges one NVM write access. *)
val write : t -> off:int -> bytes -> unit

(** [persist t ~off ~len] flushes the cache lines covering the range and
    fences; after it returns the range is durable. *)
val persist : t -> off:int -> len:int -> unit

(** [write_persist t ~off src] is [write] followed by [persist] of the same
    range. *)
val write_persist : t -> off:int -> bytes -> unit

(** 8-byte little-endian load from the volatile view (one small access). *)
val get_int64 : t -> int -> int64

(** 8-byte little-endian store; [persist] additionally flushes the word's
    line (default [false]). *)
val set_int64 : t -> int -> int64 -> persist:bool -> unit

(** [atomic_rmw t off ~f] models an atomic read-modify-write instruction
    (CAS family) on the 8-byte word at [off]: after the access cost is
    charged, [f] is applied to the then-current volatile word with no
    intervening simulation event. [Some w'] stores [w'] (volatile, marks
    the line dirty); [None] leaves the word untouched. Returns the word
    [f] observed. Use this — never a read followed by [set_int64] — for
    any word that other threads update concurrently. *)
val atomic_rmw : t -> int -> f:(int64 -> int64 option) -> int64

(** [crash t] simulates a power failure: the volatile view reverts to the
    durable image and all dirty-line tracking is cleared. Timing costs are
    not charged (nobody is running). *)
val crash : t -> unit

(** [read_durable t ~off ~len] inspects the durable image directly — for
    tests and recovery assertions only; charges no time. *)
val read_durable : t -> off:int -> len:int -> bytes

(** [restore t ~off src] writes both images directly without charging
    device time — recovery only, where the caller accounts the traffic in
    bulk (recovery is bandwidth-bound and parallelized, §5.5). *)
val restore : t -> off:int -> bytes -> unit

(** Number of currently dirty (written, unpersisted) cache lines. *)
val dirty_lines : t -> int

(** Number of {!persist} operations completed so far — each one is a
    durability boundary a crash can be injected after. *)
val persist_count : t -> int

(** [set_persist_hook t (Some f)] calls [f count] immediately after every
    {!persist} makes its range durable. The checker's crash-point sweep
    uses the hook to cut power at a chosen boundary (the hook may raise;
    the exception propagates out of {!Prism_sim.Engine.run}). [None]
    uninstalls. *)
val set_persist_hook : t -> (int -> unit) option -> unit

(** Underlying timing model, for endurance/bandwidth statistics. *)
val device : t -> Prism_device.Model.t

(** [register_stats t stats ~prefix] publishes persist/dirty-line/alloc
    gauges plus the underlying device's traffic counters under
    [<prefix>.*]. *)
val register_stats : t -> Prism_sim.Stats.t -> prefix:string -> unit
