type t = {
  data : Bytes.t;
  mutable writes : int;
  mutable on_write : (int -> unit) option;
}

let create ~size =
  if size <= 0 then invalid_arg "Ssd_image.create: size <= 0";
  { data = Bytes.make size '\000'; writes = 0; on_write = None }

let size t = Bytes.length t.data

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Ssd_image: range [%d, %d) outside image of %d bytes"
         off (off + len) (Bytes.length t.data))

let read t ~off ~len =
  check t ~off ~len;
  Bytes.sub t.data off len

let write t ~off src =
  check t ~off ~len:(Bytes.length src);
  Bytes.blit src 0 t.data off (Bytes.length src);
  t.writes <- t.writes + 1;
  match t.on_write with Some f -> f t.writes | None -> ()

let blit_to t ~off dst ~dst_off ~len =
  check t ~off ~len;
  Bytes.blit t.data off dst dst_off len

let write_count t = t.writes

let set_write_hook t f = t.on_write <- f
