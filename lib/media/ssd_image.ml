type t = { data : Bytes.t }

let create ~size =
  if size <= 0 then invalid_arg "Ssd_image.create: size <= 0";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Ssd_image: range [%d, %d) outside image of %d bytes"
         off (off + len) (Bytes.length t.data))

let read t ~off ~len =
  check t ~off ~len;
  Bytes.sub t.data off len

let write t ~off src =
  check t ~off ~len:(Bytes.length src);
  Bytes.blit src 0 t.data off (Bytes.length src)

let blit_to t ~off dst ~dst_off ~len =
  check t ~off ~len;
  Bytes.blit t.data off dst dst_off len
