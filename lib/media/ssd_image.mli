(** Content image of an SSD-backed file.

    Timing lives in {!Prism_device.Io_uring} / {!Prism_device.Model}; this
    module only holds the bytes. Data written through the async IO engine
    is applied by the entry's completion action, so a crash before
    completion simply means the bytes were never applied — matching
    O_DIRECT semantics where acknowledged writes are durable and in-flight
    writes are lost. *)

type t

val create : size:int -> t

val size : t -> int

(** [read t ~off ~len] copies bytes out of the image. *)
val read : t -> off:int -> len:int -> bytes

(** [write t ~off src] applies bytes (call from an IO completion action). *)
val write : t -> off:int -> bytes -> unit

(** [blit_to t ~off dst ~dst_off ~len] copies without allocating. *)
val blit_to : t -> off:int -> bytes -> dst_off:int -> len:int -> unit

(** Number of applied writes so far — each is an SSD write-completion
    durability boundary a crash can be injected after. *)
val write_count : t -> int

(** [set_write_hook t (Some f)] calls [f count] immediately after every
    {!write} lands. Used by the checker's crash-point sweep (the hook may
    raise to abort the simulation at that instant). [None] uninstalls. *)
val set_write_hook : t -> (int -> unit) option -> unit
