open Prism_sim
open Prism_device

let line_size = 64

type t = {
  volatile : Bytes.t;
  durable : Bytes.t;
  dirty : (int, unit) Hashtbl.t;
  device : Model.t;
  cost : Cost.t;
  mutable allocated : int;
  mutable persists : int;
  mutable on_persist : (int -> unit) option;
}

let create engine ?(cost = Cost.default) ~spec ~size () =
  if size <= 0 then invalid_arg "Nvm.create: size <= 0";
  {
    volatile = Bytes.make size '\000';
    durable = Bytes.make size '\000';
    dirty = Hashtbl.create 1024;
    device = Model.create engine spec;
    cost;
    allocated = 0;
    persists = 0;
    on_persist = None;
  }

let size t = Bytes.length t.volatile

let allocated t = t.allocated

let note_alloc t n = t.allocated <- t.allocated + n

let check t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.volatile then
    invalid_arg
      (Printf.sprintf "Nvm: range [%d, %d) outside region of %d bytes" off
         (off + len) (Bytes.length t.volatile))

let mark_dirty t ~off ~len =
  if len > 0 then
    for line = off / line_size to (off + len - 1) / line_size do
      Hashtbl.replace t.dirty line ()
    done

let read t ~off ~len =
  check t ~off ~len;
  Model.access t.device Model.Read ~size:len;
  Bytes.sub t.volatile off len

let write t ~off src =
  let len = Bytes.length src in
  check t ~off ~len;
  Model.access t.device Model.Write ~size:len;
  Bytes.blit src 0 t.volatile off len;
  mark_dirty t ~off ~len

let flush_range t ~off ~len =
  if len > 0 then
    for line = off / line_size to (off + len - 1) / line_size do
      if Hashtbl.mem t.dirty line then begin
        Hashtbl.remove t.dirty line;
        let start = line * line_size in
        let stop = min (start + line_size) (Bytes.length t.volatile) in
        Bytes.blit t.volatile start t.durable start (stop - start)
      end
    done

let persist t ~off ~len =
  check t ~off ~len;
  let lines = if len = 0 then 0 else ((off + len - 1) / line_size) - (off / line_size) + 1 in
  Engine.delay ((float_of_int lines *. t.cost.Cost.flush_line) +. t.cost.Cost.fence);
  flush_range t ~off ~len;
  t.persists <- t.persists + 1;
  match t.on_persist with Some f -> f t.persists | None -> ()

let write_persist t ~off src =
  write t ~off src;
  persist t ~off ~len:(Bytes.length src)

let get_int64 t off =
  check t ~off ~len:8;
  Model.access t.device Model.Read ~size:8;
  Bytes.get_int64_le t.volatile off

let set_int64 t off v ~persist:do_persist =
  check t ~off ~len:8;
  Model.access t.device Model.Write ~size:8;
  Bytes.set_int64_le t.volatile off v;
  mark_dirty t ~off ~len:8;
  if do_persist then persist t ~off ~len:8

let atomic_rmw t off ~f =
  check t ~off ~len:8;
  (* Charge first; the RMW itself is a single instant with no yields, so
     the compare sees the word as it is when the swap lands. *)
  Model.access t.device Model.Write ~size:8;
  let w = Bytes.get_int64_le t.volatile off in
  (match f w with
  | Some w' ->
      Bytes.set_int64_le t.volatile off w';
      mark_dirty t ~off ~len:8
  | None -> ());
  w

let crash t =
  Bytes.blit t.durable 0 t.volatile 0 (Bytes.length t.durable);
  Hashtbl.reset t.dirty

let read_durable t ~off ~len =
  check t ~off ~len;
  Bytes.sub t.durable off len

let restore t ~off src =
  let len = Bytes.length src in
  check t ~off ~len;
  Bytes.blit src 0 t.volatile off len;
  Bytes.blit src 0 t.durable off len;
  if len > 0 then
    for line = off / line_size to (off + len - 1) / line_size do
      Hashtbl.remove t.dirty line
    done

let dirty_lines t = Hashtbl.length t.dirty

let persist_count t = t.persists

let set_persist_hook t f = t.on_persist <- f

let device t = t.device

let register_stats t stats ~prefix =
  Stats.gauge_int stats (prefix ^ ".persists") (fun () -> t.persists);
  Stats.gauge_int stats (prefix ^ ".dirty_lines") (fun () ->
      Hashtbl.length t.dirty);
  Stats.gauge_int stats (prefix ^ ".allocated") (fun () -> t.allocated);
  Model.register_stats t.device stats ~prefix
