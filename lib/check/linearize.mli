(** Linearizability checking for put/get/delete histories against a
    sequential map, in the style of Wing & Gong's algorithm.

    Linearizability is local, so the checker splits the history into
    per-key register subhistories and searches each one independently: at
    every step any operation whose invocation precedes all unlinearized
    responses may linearize next, provided its recorded outcome is legal
    in the current register state. Failed (linearized-set, state)
    configurations are memoized, which keeps the search polynomial for
    the low-concurrency histories the simulator produces. Register state
    is symbolic — a value is named by the put that wrote it — so memo
    keys stay tiny.

    Scans span keys and get the weaker, compositional obligation of
    {b monotonic prefixes}: results sorted strictly ascending from the
    start key, bounded by the requested count, and containing only values
    that some put (or the preload) actually wrote before the scan
    responded. *)

type violation = {
  key : string;  (** offending key; [""] for scan violations *)
  reason : string;
  ops : History.event list;  (** the subhistory to include in a report *)
}

(** [check ?init events] verifies the history. [init] gives the value each
    key held before recording started (preload); defaults to every key
    absent. *)
val check :
  ?init:(string -> bytes option) ->
  History.event array ->
  (unit, violation) result

val pp_violation : Format.formatter -> violation -> unit
