(** Linearizability checking for put/get/delete/scan histories against a
    sequential map, in the style of Wing & Gong's algorithm.

    Linearizability is local, so the checker splits the history into
    per-key register subhistories and searches each one independently: at
    every step any operation whose invocation precedes all unlinearized
    responses may linearize next, provided its recorded outcome is legal
    in the current register state. Failed (linearized-set, state)
    configurations are memoized, which keeps the search polynomial for
    the low-concurrency histories the simulator produces. Register state
    is symbolic — a value is named by the put that wrote it — so memo
    keys stay tiny.

    {b Scans} span keys, so per-key locality does not apply to them. Two
    checking modes exist:

    - [`Weak] — the original compositional prefix conditions: results
      sorted strictly ascending from the start key, bounded by the
      requested count, and containing only values some put (or the
      preload) actually wrote before the scan responded. Cheap, but blind
      to cross-key anomalies (deleted-key ghosts, torn snapshots, omitted
      keys).
    - [`Strict] (default) — each scan must be an {e atomic snapshot
      read}: some single point in a legal linearization at which the
      scan's result is exactly the live contents of its key range. The
      Wing–Gong search is restricted to the scan's {e footprint} — the
      scan plus the puts/deletes on its returned-or-in-range keys — so
      keys no scan covers keep the per-key decomposition and the state
      space stays tractable. Scans with overlapping footprints are solved
      together as one component. Gets are deliberately left in the
      per-key search (a documented approximation: their constraints do
      not propagate into scan points). The weak conditions still run
      first as a fast pre-filter.

    A scan's covered range is [[from, last-returned-key]] when it filled
    its requested count (anything above the last key was legitimately cut
    off) and [[from, ∞)] when it returned fewer items than asked; a
    count-0 scan covers nothing. *)

type violation = {
  key : string;  (** offending key; [""] for multi-key scan violations *)
  reason : string;
  ops : History.event list;  (** the subhistory to include in a report *)
}

(** [check ?init ?init_keys ?scans events] verifies the history. [init]
    gives the value each key held before recording started (preload);
    defaults to every key absent. [init_keys] enumerates the preload
    domain — needed by the strict scan check to flag preloaded,
    never-written keys a covering scan omitted (a function's domain is
    not enumerable); defaults to []. [scans] selects the scan mode
    described above; defaults to [`Strict]. *)
val check :
  ?init:(string -> bytes option) ->
  ?init_keys:string list ->
  ?scans:[ `Strict | `Weak ] ->
  History.event array ->
  (unit, violation) result

val pp_violation : Format.formatter -> violation -> unit
