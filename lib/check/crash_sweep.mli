(** Crash-point sweep: run a seeded workload, cut power at every k-th
    durability boundary, recover, and check that the recovered state is a
    consistent per-key prefix — every acknowledged write present (or
    superseded by the one in-flight operation), no deleted key
    resurrected, no value from the future.

    Each workload thread owns a disjoint key range, so per-key operation
    sequences are sequential and "last acknowledged write" needs no
    linearizability search. Boundaries are observed through the hook
    counters: {!Prism_media.Nvm.set_persist_hook} (every [clwb+sfence])
    and {!Prism_media.Ssd_image.set_write_hook} (every completed chunk
    write) for Prism; the LSM baseline's WAL-append and SSTable-publish
    hooks ({!Prism_baselines.Lsm_tree.set_wal_hook} /
    [set_publish_hook]); KVell's page writes carry no content image, so
    its sweep uses an even virtual-time grid sized to one crash per
    [crash_every] executed events. The injection hook raises inside the
    simulation, which unwinds {!Prism_sim.Engine.run}; the sweep then
    clears pending events, crashes the store, recovers, and audits. *)

type config = {
  store : [ `Prism | `Kvell | `Lsm | `Cluster ];
  placement : [ `Static | `Hotness ];
      (** [`Prism] only: [`Hotness] adds a checker-sized NVM value tier,
          so nvm-persist crash points also land inside promote copies
          (tier write vs. HSIT coupling update) and ssd-write points
          inside demotion write-backs *)
  threads : int;
  keys_per_thread : int;  (** disjoint per-thread key ranges *)
  ops_per_thread : int;
  value_size : int;
  crash_every : int;  (** inject at every k-th boundary *)
  fault_skip_hsit_flush : bool;
      (** deliberately break the §5.4 persist protocol (Prism only); the
          sweep must then report lost acknowledged writes *)
  lsm_wal : bool;
      (** [`Lsm] only: disable to model WAL-less RocksDB — the publish
          sweep must then report lost acknowledged writes *)
  shards : int;  (** [`Cluster] only: Prism shards behind the 2PC front *)
  txn_every : int;
      (** [`Cluster] only: every N-th op per thread is a multi-key 2PC
          write batch over the thread's range (0 = singles only) *)
  fault_skip_log_flush : bool;
      (** [`Cluster] only: commit records skip their persist, so the
          client ack races durability — the coord-log sweep must then
          report lost acknowledged transaction writes *)
  seed : int64;
}

val default : config

type violation = {
  crash_point : int;  (** boundary ordinal (or grid index) injected at *)
  boundary : string;
      (** ["nvm-persist"], ["ssd-write"], ["wal-append"],
          ["sstable-publish"], ["virtual-time"], ["coord-log-persist"],
          ["prepare-log-persist"] *)
  key : string;
  detail : string;
}

type report = {
  crash_points : int;  (** crashes actually injected *)
  boundaries : (string * int) list;  (** clean-run boundary counts *)
  violations : violation list;
}

(** [run cfg] performs the full sweep: one clean run to count boundaries,
    then one crash-and-recover run per injection point. [progress] fires
    after each injected crash (in ascending target order, whatever
    [jobs] is). [jobs > 1] farms the crash runs out to that many fleet
    lanes — every target is an independent simulation — and merges the
    results in target order, replaying the serial driver's early-stop
    behaviour, so the report is byte-identical to [jobs = 1]. *)
val run :
  ?progress:(boundary:string -> crash_point:int -> unit) ->
  ?jobs:int ->
  config ->
  report

(** [prism_crash_once cfg ~boundary ~target] is one Prism
    crash-at-boundary-[target] run (clean when [target = 0]), under an
    explorer-controlled tie-break — the building block for composing
    {!Dpor} with crash recovery. [`Completed] carries the clean run's
    (nvm-persist, ssd-write) boundary counts; [`Crashed_before_store]
    means [target] fell inside store creation. *)
val prism_crash_once :
  ?tie:Prism_sim.Engine.tie_break ->
  config ->
  boundary:[ `Nvm_persist | `Ssd_write ] ->
  target:int ->
  [ `Completed of int * int
  | `Crashed of violation list
  | `Crashed_before_store ]
