(** Seeded schedule exploration with linearizability checking.

    One run = one tie-break seed handed to {!Prism_sim.Engine.set_tie_break}:
    the engine resolves every same-instant event tie with a SplitMix64
    stream, so each seed names exactly one interleaving of the same
    per-thread operation lists. A failing schedule is reported with its
    tie seed; {!replay} (or the CLI's [--replay]) re-runs that one
    interleaving deterministically. *)

type fault =
  | No_fault
  | Skip_svc_invalidate
      (** puts/deletes skip the SVC invalidation — stale reads; the
          linearizability check must flag it *)
  | Skip_hsit_flush
      (** HSIT skips pointer persists — harmless live, fatal across a
          crash; see {!Crash_sweep} *)

type config = {
  store : [ `Prism | `Kvell ];
  threads : int;
  records : int;  (** preloaded keys (small, to force contention) *)
  value_size : int;
  ops_per_thread : int;
  theta : float;  (** Zipfian skew of the YCSB-A slice *)
  fault : fault;
  seed : int64;  (** master seed: workload + all per-schedule tie seeds *)
}

val default : config

type schedule_stats = {
  index : int;
  tie_seed : int64;
  events : int;  (** completed history events *)
  clock : float;  (** final virtual time *)
  choices : int;  (** tie-break decisions taken *)
  fingerprint : int;  (** hash of (choices, events executed, clock) *)
}

type failure = { stats : schedule_stats; violation : string }

type report = {
  schedules : schedule_stats list;
  distinct : int;  (** number of distinct schedule fingerprints *)
  failures : failure list;
}

(** [tie_seed_for seed i] is the tie seed schedule [i] runs under. *)
val tie_seed_for : int64 -> int -> int64

(** [run ~schedules cfg] explores [schedules] seeded interleavings of the
    same workload and checks each history for linearizability (plus the
    scan sanity conditions). [progress] is called after each schedule. *)
val run :
  ?progress:(schedule_stats -> unit) -> schedules:int -> config -> report

(** [replay cfg ~tie_seed] re-runs a single schedule and returns the
    violation text, if any — for reproducing a reported failure. *)
val replay : config -> tie_seed:int64 -> string option

(** [kvell_sync engine s] builds a KVell instance plus a {!Prism_harness.Kv.t}
    whose [put] is synchronous (returns only once durable), unlike
    {!Prism_harness.Kv.of_kvell}'s injector-style pipelined puts — a
    checker must not treat an unacknowledged write's return as its
    response endpoint. Shared with {!Crash_sweep}. *)
val kvell_sync :
  Prism_sim.Engine.t ->
  Prism_harness.Setup.scenario ->
  Prism_baselines.Kvell.t * Prism_harness.Kv.t
