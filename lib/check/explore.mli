(** Seeded schedule exploration with linearizability checking.

    One run = one tie-break seed handed to {!Prism_sim.Engine.set_tie_break}:
    the engine resolves every same-instant event tie with a SplitMix64
    stream, so each seed names exactly one interleaving of the same
    per-thread operation lists. A failing schedule is reported with its
    tie seed; {!replay} (or the CLI's [--replay]) re-runs that one
    interleaving deterministically. *)

type fault =
  | No_fault
  | Skip_svc_invalidate
      (** puts/deletes skip the SVC invalidation — stale reads; the
          linearizability check must flag it *)
  | Skip_hsit_flush
      (** HSIT skips pointer persists — harmless live, fatal across a
          crash; see {!Crash_sweep} *)
  | Scan_stale_snapshot
      (** repeat scans from one start key are served from the previous
          result — stale snapshots the weak scan check cannot see *)
  | Scan_skip_pwb
      (** scans ignore values whose freshest version lives in a PWB —
          recently-written in-range keys silently vanish from results *)
  | Scan_drop_key
      (** scans drop their second item when returning three or more — a
          provably present in-range key goes missing *)
  | Skip_2pc_log_flush
      (** the cluster coordinator acks commits without persisting the
          commit record — harmless live, loses acknowledged transactions
          across a crash; see {!Crash_sweep} *)

type config = {
  store : [ `Prism | `Kvell ];
  placement : [ `Static | `Hotness ];
      (** Prism value-placement policy; [`Hotness] adds a checker-sized
          NVM value tier so schedules interleave promotions/demotions
          with client operations ([`Kvell] ignores it) *)
  threads : int;
  records : int;  (** preloaded keys (small, to force contention) *)
  value_size : int;
  ops_per_thread : int;
  theta : float;  (** Zipfian skew of the YCSB-A slice *)
  delete_every : int;
      (** 1-in-N updates become deletes (default 8; lower = more) *)
  scan_every : int;
      (** 1-in-N reads become short scans (default 16; lower = more) *)
  scan_check : [ `Strict | `Weak ];
      (** scan obligation passed to {!Linearize.check}: atomic snapshots
          (default) or the legacy prefix conditions *)
  fault : fault;
  shards : int;
      (** > 1 runs a hash-partitioned {!Prism_cluster.Cluster} instead of
          one store (Prism only); scans are traded for reads, since
          scatter-gather scans sit outside the cluster's
          strict-serializability argument *)
  txn_every : int;
      (** 1-in-N updates become multi-key 2PC write batches (0 = never);
          committed batches enter the check as atomic anchors, so a torn
          or non-atomic transaction is a reported violation *)
  seed : int64;  (** master seed: workload + all per-schedule tie seeds *)
}

val default : config

type schedule_stats = {
  index : int;
  tie_seed : int64;
  events : int;  (** completed history events *)
  clock : float;  (** final virtual time *)
  choices : int;  (** tie-break decisions taken *)
  fingerprint : int;  (** hash of (choices, events executed, clock) *)
}

type failure = { stats : schedule_stats; violation : string }

type report = {
  schedules : schedule_stats list;
  distinct : int;  (** number of distinct schedule fingerprints *)
  failures : failure list;
}

(** [tie_seed_for seed i] is the tie seed schedule [i] runs under. *)
val tie_seed_for : int64 -> int -> int64

(** [run ~schedules cfg] explores [schedules] seeded interleavings of the
    same workload and checks each history for linearizability (plus the
    scan sanity conditions). [progress] is called after each schedule,
    in schedule order. With [jobs > 1] the schedules execute on a
    {!Prism_fleet.Fleet} pool; the report (and the [progress] sequence)
    is byte-identical to the serial run for any job count. *)
val run :
  ?progress:(schedule_stats -> unit) ->
  ?jobs:int ->
  schedules:int ->
  config ->
  report

(** [replay cfg ~tie_seed] re-runs a single schedule and returns the
    violation text, if any — for reproducing a reported failure. *)
val replay : config -> tie_seed:int64 -> string option

(** {2 DPOR exploration}

    Instead of sampling seeds, {!run_dpor} walks the tie-break decision
    tree systematically via {!Dpor}, pruned with sleep sets and
    persistent sets over {!History.conflicting} so that every completed
    run is a distinct Mazurkiewicz class of the workload. *)

type dpor_failure = {
  class_index : int;  (** which equivalence class failed *)
  found_at_run : int;  (** simulations executed when it was found *)
  choices : int array;
      (** replayable decision list — [--replay-choices] / {!replay_choices} *)
  violation : string;
}

type dpor_report = {
  classes : int;  (** distinct equivalence classes completed *)
  runs : int;  (** total simulations, including pruned ones *)
  pruned : int;  (** runs abandoned as sleep-set redundant *)
  complete : bool;  (** decision tree exhausted within budget *)
  dpor_failures : dpor_failure list;
}

(** [run_dpor ~max_classes cfg] explores up to [max_classes] distinct
    interleaving classes of the workload. With [stop_on_failure] the walk
    stops at the first linearizability violation. With [jobs > 1] the
    frontier is explored speculatively on worker domains (see
    {!Dpor.explore}); the report and [progress] sequence are
    byte-identical to the serial walk. *)
val run_dpor :
  ?progress:(schedule_stats -> unit) ->
  ?stop_on_failure:bool ->
  ?jobs:int ->
  max_classes:int ->
  config ->
  dpor_report

(** {2 Choice-list replay and shrinking} *)

(** [record cfg ~tie_seed] runs one seeded schedule and returns the
    tie-break decisions it took (as {!Prism_sim.Engine.Replay} indices)
    plus the violation, if any — the raw material for {!shrink}. *)
val record : config -> tie_seed:int64 -> int array * string option

(** [run_tie cfg ~tie] is one run of the workload under an arbitrary
    tie-break policy (e.g. [Guided], to drive the store from a custom
    {!Dpor} exploration), returning the recorded decisions and the
    violation, if any. *)
val run_tie :
  config -> tie:Prism_sim.Engine.tie_break -> int array * string option

(** [replay_choices cfg ~choices] re-runs the schedule named by an
    explicit decision list. Decisions beyond the list's end fall back to
    FIFO, so a {!shrink}-stripped list replays to the same schedule. *)
val replay_choices : config -> choices:int array -> string option

type shrunk = {
  minimal : int array;  (** shortest reproducing decision list *)
  non_fifo : int;  (** decisions in [minimal] that depart from FIFO *)
  replays : int;  (** simulations spent shrinking *)
  shrunk_violation : string;  (** what [minimal] still violates *)
}

(** [shrink cfg ~choices] reverts tie decisions to FIFO (index 0) while
    the replay still reports a violation — ddmin-style over shrinking
    blocks, so [O(k log n)] replays when [k] of [n] decisions are
    load-bearing — then strips the trailing FIFO run. Each candidate is
    validated by a full replay, capped at [max_replays] simulations
    (minimal-so-far if the cap is hit). [None] if [choices] doesn't
    reproduce a violation in the first place. *)
val shrink : ?max_replays:int -> config -> choices:int array -> shrunk option

(** [kvell_sync engine s] builds a KVell instance plus a {!Prism_harness.Kv.t}
    whose [put] is synchronous (returns only once durable), unlike
    {!Prism_harness.Kv.of_kvell}'s injector-style pipelined puts — a
    checker must not treat an unacknowledged write's return as its
    response endpoint. Shared with {!Crash_sweep}. *)
val kvell_sync :
  Prism_sim.Engine.t ->
  Prism_harness.Setup.scenario ->
  Prism_baselines.Kvell.t * Prism_harness.Kv.t
