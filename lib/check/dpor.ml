open Prism_sim

module Iset = Set.Make (Int)

(* One decision point of the choice tree. [alts] is the tie set the
   engine presented (scheduling order, so index 0 is the FIFO pick);
   event seq numbers are the stable identity of an alternative — the
   simulation is deterministic, so re-running the same choice prefix
   reproduces the same tie set with the same seqs. *)
type node = {
  alts : Engine.alt array;
  sleep : Iset.t;  (* seqs asleep on entry to this node *)
  branch : Iset.t;  (* persistent set: seqs eligible for branching here *)
  mutable taken : int;  (* index into [alts] currently being explored *)
  mutable explored : Iset.t;  (* seqs whose subtrees are fully explored *)
}

type 'a class_result = {
  index : int;
  run : int;
  depth : int;
  choices : int array;
  result : 'a;
}

type 'a report = {
  classes : 'a class_result list;
  explored : int;
  runs : int;
  pruned : int;
  complete : bool;
}

exception Diverged

(* Dependency-closure persistent set: the connected component of the
   chosen alternative under [dependent], within the tie set. Members of
   other components commute with everything we will branch on here, and
   their own conflicts are branched at the later decision points where
   they meet — so branching only inside the component covers every
   inequivalent ordering this node can influence. With [full] the whole
   tie set is eligible (no reduction). *)
let closure ~full ~dependent (alts : Engine.alt array) taken_seq =
  if full then
    Array.fold_left (fun s (a : Engine.alt) -> Iset.add a.seq s) Iset.empty alts
  else begin
    (* Dependency edges require at least one endpoint to carry an
       operation label. [dependent] treats label 0 (simulator machinery
       owned by no KV operation) as conflicting with everything, so
       admitting 0–0 edges would connect every tie set completely and the
       tree would drown in reorderings of background events no history
       can distinguish. With the restriction, machinery-only tie sets
       stay in scheduling order, and branching happens exactly where an
       operation's event races something dependent on it. *)
    let edge (a : Engine.alt) (b : Engine.alt) =
      (a.label <> 0 || b.label <> 0) && dependent a.label b.label
    in
    let members = ref (Iset.singleton taken_seq) in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (a : Engine.alt) ->
          if not (Iset.mem a.seq !members) then
            if
              Array.exists
                (fun (b : Engine.alt) -> Iset.mem b.seq !members && edge a b)
                alts
            then begin
              members := Iset.add a.seq !members;
              changed := true
            end)
        alts
    done;
    !members
  end

let explore ?(full = false) ?(stop_on = fun _ -> false) ~max_classes ~dependent
    run_fn =
  (* Labels of every seq ever seen in a tie set. Seqs are deterministic
     per prefix, so entries stay valid across runs; sleep-set filtering
     needs a label even for seqs absent from the current tie set. *)
  let label_of : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let stack : node list ref = ref [] in
  (* deepest decision first *)
  let classes = ref [] in
  let n_classes = ref 0 in
  let runs = ref 0 in
  let pruned = ref 0 in
  let complete = ref false in
  let run_once () =
    let prefix = Array.of_list (List.rev !stack) in
    let fresh : node list ref = ref [] in
    let last : node option ref = ref None in
    let depth = ref 0 in
    let redundant = ref false in
    let choices_rev = ref [] in
    let choose (alts : Engine.alt array) =
      Array.iter
        (fun (a : Engine.alt) -> Hashtbl.replace label_of a.seq a.label)
        alts;
      let d = !depth in
      incr depth;
      let pick =
        if d < Array.length prefix then begin
          let n = prefix.(d) in
          if
            Array.length n.alts <> Array.length alts
            || n.alts.(n.taken).seq <> alts.(n.taken).seq
          then raise Diverged;
          last := Some n;
          n.taken
        end
        else if !redundant then 0
        else begin
          (* Sleep set: alternatives already covered by an earlier sibling
             subtree stay asleep until something dependent executes
             (Godefroid). Waking is the filter below; falling asleep is
             the [explored] union. *)
          let sleep =
            match !last with
            | _ when full -> Iset.empty
            | None -> Iset.empty
            | Some p ->
                let tl = p.alts.(p.taken).label in
                Iset.union p.sleep p.explored
                |> Iset.filter (fun s ->
                       match Hashtbl.find_opt label_of s with
                       | Some l -> not (dependent l tl)
                       | None -> false)
          in
          let taken = ref (-1) in
          Array.iteri
            (fun i (a : Engine.alt) ->
              if !taken < 0 && not (Iset.mem a.seq sleep) then taken := i)
            alts;
          if !taken < 0 then begin
            (* Every enabled alternative is asleep: any completion of this
               prefix is Mazurkiewicz-equivalent to an already-explored
               schedule. Finish the run FIFO but report it pruned. *)
            redundant := true;
            0
          end
          else begin
            let node =
              {
                alts;
                sleep;
                branch = closure ~full ~dependent alts alts.(!taken).seq;
                taken = !taken;
                explored = Iset.empty;
              }
            in
            fresh := node :: !fresh;
            last := Some node;
            !taken
          end
        end
      in
      choices_rev := pick :: !choices_rev;
      pick
    in
    let result = run_fn ~choose in
    stack := !fresh @ !stack;
    (result, !redundant, !depth, Array.of_list (List.rev !choices_rev))
  in
  (* Deepest node with an unexplored, awake branch candidate; pop the
     exhausted tail. *)
  let rec backtrack () =
    match !stack with
    | [] -> false
    | n :: rest ->
        n.explored <- Iset.add n.alts.(n.taken).seq n.explored;
        let cand = ref (-1) in
        Array.iteri
          (fun i (a : Engine.alt) ->
            if
              !cand < 0
              && Iset.mem a.seq n.branch
              && (not (Iset.mem a.seq n.explored))
              && not (Iset.mem a.seq n.sleep)
            then cand := i)
          n.alts;
        if !cand >= 0 then begin
          n.taken <- !cand;
          true
        end
        else begin
          stack := rest;
          backtrack ()
        end
  in
  let continue_ = ref true in
  while !continue_ do
    let result, redundant, depth, choices = run_once () in
    incr runs;
    let stop = ref false in
    if redundant then incr pruned
    else begin
      classes :=
        { index = !n_classes; run = !runs; depth; choices; result } :: !classes;
      incr n_classes;
      if stop_on result then stop := true
    end;
    if !stop || !n_classes >= max_classes then continue_ := false
    else if not (backtrack ()) then begin
      complete := true;
      continue_ := false
    end
  done;
  {
    classes = List.rev !classes;
    explored = !n_classes;
    runs = !runs;
    pruned = !pruned;
    complete = !complete;
  }
