open Prism_sim
open Prism_fleet

module Iset = Set.Make (Int)

(* One decision point of the choice tree. [alts] is the tie set the
   engine presented (scheduling order, so index 0 is the FIFO pick);
   event seq numbers are the stable identity of an alternative — the
   simulation is deterministic, so re-running the same choice prefix
   reproduces the same tie set with the same seqs.

   Exploration is tree-shaped rather than a DFS stack: every node ever
   reached stays live until all its branch candidates have started, and
   each run targets one (node, alternative) pair, replaying the node's
   recorded path to get there. This lets the scheduler pick *which*
   frontier to extend next (see [order] in {!explore}) instead of being
   forced into deepest-first backtracking. *)
type node = {
  mutable id : int;  (* commit order — assigned when the creating run
                        commits (creation order in the serial walk); -1
                        while the run is still speculative *)
  depth : int;  (* decision index of this node within its runs *)
  path_nodes : node array;  (* ancestor decisions, root first *)
  path_picks : int array;  (* pick taken at each ancestor *)
  alts : Engine.alt array;
  sleep : Iset.t;  (* seqs asleep on entry to this node *)
  branch : Iset.t;  (* persistent set: seqs eligible for branching here *)
  mutable started : Iset.t;  (* seqs whose subtrees have begun exploring *)
}

type 'a class_result = {
  index : int;
  run : int;
  depth : int;
  choices : int array;
  result : 'a;
}

type 'a report = {
  classes : 'a class_result list;
  explored : int;
  runs : int;
  pruned : int;
  complete : bool;
}

exception Diverged

(* Dependency-closure persistent set: the connected component of the
   chosen alternative under [dependent], within the tie set. Members of
   other components commute with everything we will branch on here, and
   their own conflicts are branched at the later decision points where
   they meet — so branching only inside the component covers every
   inequivalent ordering this node can influence. With [full] the whole
   tie set is eligible (no reduction). *)
let closure ~full ~dependent (alts : Engine.alt array) taken_seq =
  if full then
    Array.fold_left (fun s (a : Engine.alt) -> Iset.add a.seq s) Iset.empty alts
  else begin
    (* Dependency edges require at least one endpoint to carry an
       operation label. [dependent] treats label 0 (simulator machinery
       owned by no KV operation) as conflicting with everything, so
       admitting 0–0 edges would connect every tie set completely and the
       tree would drown in reorderings of background events no history
       can distinguish. With the restriction, machinery-only tie sets
       stay in scheduling order, and branching happens exactly where an
       operation's event races something dependent on it. *)
    let edge (a : Engine.alt) (b : Engine.alt) =
      (a.label <> 0 || b.label <> 0) && dependent a.label b.label
    in
    let members = ref (Iset.singleton taken_seq) in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun (a : Engine.alt) ->
          if not (Iset.mem a.seq !members) then
            if
              Array.exists
                (fun (b : Engine.alt) -> Iset.mem b.seq !members && edge a b)
                alts
            then begin
              members := Iset.add a.seq !members;
              changed := true
            end)
        alts
    done;
    !members
  end

(* First alternative at [n] eligible to start a new subtree under the
   given [started] set: in the persistent set, not already started, not
   asleep. -1 when exhausted. Parameterising [started] lets the
   speculative scheduler evaluate candidates against a predicted future
   state without touching the node. *)
let candidate_with started n =
  let c = ref (-1) in
  Array.iteri
    (fun i (a : Engine.alt) ->
      if
        !c < 0
        && Iset.mem a.seq n.branch
        && (not (Iset.mem a.seq started))
        && not (Iset.mem a.seq n.sleep)
      then c := i)
    n.alts;
  !c

let candidate n = candidate_with n.started n

let explore ?(order = `Frontier) ?(full = false) ?(stop_on = fun _ -> false)
    ?(on_commit = fun ~run:_ _ -> ()) ?pool ~max_classes ~dependent run_fn =
  let nodes : node list ref = ref [] in
  let node_count = ref 0 in
  let classes = ref [] in
  let n_classes = ref 0 in
  let runs = ref 0 in
  let pruned = ref 0 in
  let complete = ref false in
  (* One run against [target], touching no shared exploration state —
     so it can execute speculatively on a worker domain and be committed
     (or discarded) later by the coordinator.

     The label table is run-local. That is equivalent to a persistent
     global one: every seq consulted by sleep-set filtering is a member
     of some ancestor's sleep/started set, and those sets are (by
     construction) subsets of the seqs of tie sets at shallower depths
     along the same path — tie sets this run replays itself, recording
     every member's label before the first consultation. A global table
     could only differ on seqs this run never consults.

     [snapshot] is the [started] set the run assumes at the target node;
     the run works on a local shadow of the node (grown by its own pick)
     instead of publishing the update, and the coordinator validates the
     snapshot is still current at commit time. Fresh nodes carry [id]
     -1 until the commit numbers them. *)
  let spec_run (target : (node * int) option) ~snapshot =
    let label_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
    let fresh : node list ref = ref [] in
    (* Parent of the next fresh decision point, with the index taken
       there — seeds the child's sleep set. *)
    let last : (node * int) option ref = ref None in
    let depth = ref 0 in
    let redundant = ref false in
    let target_forced = ref false in
    let choices_rev = ref [] in
    let choose (alts : Engine.alt array) =
      Array.iter
        (fun (a : Engine.alt) -> Hashtbl.replace label_of a.seq a.label)
        alts;
      let d = !depth in
      incr depth;
      let pick =
        match target with
        | Some (n, _) when d < n.depth ->
            let anc = n.path_nodes.(d) and p = n.path_picks.(d) in
            if
              Array.length anc.alts <> Array.length alts
              || anc.alts.(p).seq <> alts.(p).seq
            then raise Diverged;
            p
        | Some (n, i) when d = n.depth ->
            if
              Array.length n.alts <> Array.length alts
              || n.alts.(i).seq <> alts.(i).seq
            then raise Diverged;
            target_forced := true;
            (* Run-local shadow: descendants must see [started] grown by
               this run's own pick, but the real node is only updated at
               commit. Only [alts]/[sleep]/[started] of [last] are ever
               read downstream, so the copy is safe to thread through
               child paths. *)
            last := Some ({ n with started = Iset.add n.alts.(i).seq snapshot }, i);
            i
        | _ ->
            if !redundant then 0
            else begin
              (* Sleep set: alternatives whose subtrees an earlier
                 sibling has already begun covering stay asleep until
                 something dependent executes (Godefroid). The invariant
                 is order-independent — a sibling falls asleep as soon as
                 its exploration {e starts}, whatever order subtrees are
                 scheduled in — so at exhaustion every completed run is
                 still a distinct class, and within a budget no class is
                 ever counted twice. *)
              let sleep =
                if full then Iset.empty
                else
                  match !last with
                  | None -> Iset.empty
                  | Some (p, ti) ->
                      let tl = p.alts.(ti).label in
                      let tseq = p.alts.(ti).seq in
                      Iset.union p.sleep (Iset.remove tseq p.started)
                      |> Iset.filter (fun s ->
                             match Hashtbl.find_opt label_of s with
                             | Some l -> not (dependent l tl)
                             | None -> false)
              in
              let taken = ref (-1) in
              Array.iteri
                (fun i (a : Engine.alt) ->
                  if !taken < 0 && not (Iset.mem a.seq sleep) then taken := i)
                alts;
              if !taken < 0 then begin
                (* Every enabled alternative is asleep: any completion of
                   this prefix is Mazurkiewicz-equivalent to an
                   already-covered schedule. Finish the run FIFO but
                   report it pruned. *)
                redundant := true;
                0
              end
              else begin
                let path_nodes, path_picks =
                  match !last with
                  | None -> ([||], [||])
                  | Some (p, ti) ->
                      ( Array.append p.path_nodes [| p |],
                        Array.append p.path_picks [| ti |] )
                in
                let node =
                  {
                    id = -1;
                    depth = d;
                    path_nodes;
                    path_picks;
                    alts;
                    sleep;
                    branch = closure ~full ~dependent alts alts.(!taken).seq;
                    started = Iset.singleton alts.(!taken).seq;
                  }
                in
                fresh := node :: !fresh;
                last := Some (node, !taken);
                !taken
              end
            end
      in
      choices_rev := pick :: !choices_rev;
      pick
    in
    let result = run_fn ~choose in
    (match target with
    | Some _ when not !target_forced ->
        (* The run ended before reaching the targeted decision point —
           the simulation is not reproducing its prefix. *)
        raise Diverged
    | _ -> ());
    ( result,
      !redundant,
      !depth,
      Array.of_list (List.rev !choices_rev),
      List.rev !fresh (* creation order *) )
  in
  let stopped = ref false in
  (* Publish a finished run: update the target's persistent state,
     number and adopt the fresh nodes, account the class. Commit order
     IS the serial exploration order, so everything downstream (ids,
     run numbers, class indices, [on_commit] calls) is byte-identical
     to the serial walk whatever executed the runs. *)
  let commit (result, redundant, rdepth, choices, fresh) target =
    (match target with
    | Some ((n : node), i) -> n.started <- Iset.add n.alts.(i).seq n.started
    | None -> ());
    List.iter
      (fun f ->
        f.id <- !node_count;
        incr node_count)
      fresh;
    nodes := List.rev_append fresh !nodes;
    incr runs;
    if redundant then incr pruned
    else begin
      classes :=
        { index = !n_classes; run = !runs; depth = rdepth; choices; result }
        :: !classes;
      incr n_classes;
      if stop_on result then stopped := true
    end;
    on_commit ~run:!runs result;
    if !n_classes >= max_classes then stopped := true
  in
  (* Next frontier to extend. [`Frontier] branches at the shallowest
     pending node (earliest decision with an uncovered dependent
     ordering), creation order breaking ties — small budgets spread
     across the whole schedule instead of permuting its tail.
     [`Deepest] takes the most recently created node, which reproduces
     the old DFS backtracking order. *)
  let select l =
    let better (a : node) (b : node) =
      match order with
      | `Frontier ->
          if a.depth <> b.depth then a.depth < b.depth else a.id < b.id
      | `Deepest -> a.id > b.id
    in
    List.fold_left (fun acc n -> if better n acc then n else acc)
      (List.hd l) (List.tl l)
  in
  let next_target () =
    nodes := List.filter (fun n -> candidate n >= 0) !nodes;
    match !nodes with
    | [] -> None
    | l ->
        let n = select l in
        Some (n, candidate n)
  in
  (* The root run builds the initial tree and must run alone. *)
  commit (spec_run None ~snapshot:Iset.empty) None;
  (match pool with
  | Some pool when Fleet.jobs pool > 1 ->
      (* Speculative frontier walk. The serial algorithm is a chain —
         each run's fresh nodes feed the next selection — so parallelism
         comes from *predicting* the next few selections and running
         them speculatively, while the coordinator commits strictly in
         the serial selection order. Before consuming each speculative
         result it recomputes the true next target from committed state;
         a prediction holds unless a committed run created a node that
         preempts the selection (or grew the target's [started] under
         it), in which case the walk falls back to one serial step and
         the rest of the batch is discarded. Commits are the only
         mutation of shared state, so discarded speculations leave no
         trace and the report is byte-identical to the serial walk. *)
      let window = 2 * Fleet.jobs pool in
      (* Predict the next [window] (node, alt, started-snapshot) targets
         by replaying the selection rule against a shadow frontier whose
         started sets grow with each predicted pick. Fresh speculative
         nodes are invisible to the shadow (they only exist at commit),
         so predictions beyond the next commit can be preempted. *)
      let predict () =
        let shadow : (int, Iset.t) Hashtbl.t = Hashtbl.create 16 in
        let started_of n =
          match Hashtbl.find_opt shadow n.id with
          | Some s -> s
          | None -> n.started
        in
        let preds = ref [] in
        let n_preds = ref 0 in
        let exhausted = ref false in
        while (not !exhausted) && !n_preds < window do
          match
            List.filter (fun n -> candidate_with (started_of n) n >= 0) !nodes
          with
          | [] -> exhausted := true
          | live ->
              let n = select live in
              let i = candidate_with (started_of n) n in
              let snap = started_of n in
              preds := (n, i, snap) :: !preds;
              incr n_preds;
              Hashtbl.replace shadow n.id (Iset.add n.alts.(i).seq snap)
        done;
        List.rev !preds
      in
      (* In-flight speculations, head = predicted next commit. After a
         mispredict the tail is re-predicted against the corrected
         frontier instead of being discarded: any in-flight future whose
         (node, alternative, snapshot) triple survives re-prediction is
         still a valid run of that target and is kept; only genuinely
         new targets are submitted. Stale futures are dropped — never
         committed, so they never existed as far as the report is
         concerned (an idle worker may still burn cycles on one). *)
      let inflight = ref [] in
      let refill () =
        let old = !inflight in
        inflight :=
          List.map
            (fun (n, i, snap) ->
              match
                List.find_opt
                  (fun (n', i', snap', _) ->
                    n' == n && i' = i && Iset.equal snap snap')
                  old
              with
              | Some entry -> entry
              | None ->
                  ( n,
                    i,
                    snap,
                    Fleet.submit pool (fun () ->
                        spec_run (Some (n, i)) ~snapshot:snap) ))
            (predict ())
      in
      while not !stopped do
        match next_target () with
        | None ->
            complete := true;
            stopped := true
        | Some (n', i') -> (
            (if !inflight = [] then refill ());
            match !inflight with
            | (n, i, snap, fu) :: rest
              when n' == n && i' = i && Iset.equal snap n.started ->
                inflight := rest;
                commit (Fleet.await pool fu) (Some (n, i))
            | _ ->
                (* Mispredicted (or prediction exhausted): one inline
                   serial step against the true frontier, then rebuild
                   the window, reusing whatever still matches. *)
                commit
                  (spec_run (Some (n', i')) ~snapshot:n'.started)
                  (Some (n', i'));
                refill ())
      done
  | _ ->
      (* Serial walk: same spec_run/commit pair, back to back. *)
      while not !stopped do
        match next_target () with
        | None ->
            complete := true;
            stopped := true
        | Some (n, i) ->
            commit (spec_run (Some (n, i)) ~snapshot:n.started) (Some (n, i))
      done);
  {
    classes = List.rev !classes;
    explored = !n_classes;
    runs = !runs;
    pruned = !pruned;
    complete = !complete;
  }
