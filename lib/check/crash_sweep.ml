open Prism_sim
open Prism_harness
open Prism_fleet

exception Crash_now

type config = {
  store : [ `Prism | `Kvell | `Lsm | `Cluster ];
  placement : [ `Static | `Hotness ];
  threads : int;
  keys_per_thread : int;
  ops_per_thread : int;
  value_size : int;
  crash_every : int;
  fault_skip_hsit_flush : bool;
  lsm_wal : bool;
  shards : int;
  txn_every : int;
  fault_skip_log_flush : bool;
  seed : int64;
}

let default =
  {
    store = `Prism;
    placement = `Static;
    threads = 4;
    keys_per_thread = 24;
    ops_per_thread = 60;
    value_size = 128;
    crash_every = 5;
    fault_skip_hsit_flush = false;
    lsm_wal = true;
    shards = 2;
    txn_every = 4;
    fault_skip_log_flush = false;
    seed = 1L;
  }

type violation = {
  crash_point : int;
  boundary : string;
  key : string;
  detail : string;
}

type report = {
  crash_points : int;
  boundaries : (string * int) list;  (** boundary kind -> clean-run count *)
  violations : violation list;
}

(* ---- deterministic workload with an acknowledgement oracle ---- *)

(* Each thread owns a disjoint key range, so every key's operation
   sequence is sequential and "the last acknowledged write" is
   well-defined without a linearizability search. [Some v] is a put of
   version [v]; [None] is a delete. *)
let thread_ops cfg tid =
  let rng = Rng.create (Int64.add cfg.seed (Int64.of_int ((tid * 7919) + 1))) in
  Array.init cfg.ops_per_thread (fun j ->
      let key =
        Prism_workload.Ycsb.key_of
          ((tid * cfg.keys_per_thread) + Rng.int rng cfg.keys_per_thread)
      in
      if Rng.int rng 5 = 0 then (key, None) else (key, Some (j + 1)))

let all_ops cfg = Array.init cfg.threads (thread_ops cfg)

let value_of cfg ~key ~version =
  Prism_workload.Ycsb.value_for ~size:cfg.value_size ~key ~version

(* Acknowledged vs pending state, updated around every operation. At a
   crash instant each key has its last acked write plus at most one
   pending operation (single owner thread), and the recovered value must
   be one of those two outcomes — any acked write lost, or any deleted
   key resurrected, is a violation. *)
type oracle = {
  acked : (string, int option) Hashtbl.t;
  pending : (string, int option) Hashtbl.t;
}

let make_oracle () = { acked = Hashtbl.create 256; pending = Hashtbl.create 8 }

let run_workload cfg (kv : Kv.t) oracle ops =
  Array.iteri
    (fun tid thread_ops ->
      Engine.spawn (Engine.current ()) (fun () ->
          let hot = Prism_workload.Ycsb.key_of (tid * cfg.keys_per_thread) in
          Array.iter
            (fun (key, what) ->
              Hashtbl.replace oracle.pending key what;
              (match what with
              | Some version ->
                  kv.Kv.put ~tid key (value_of cfg ~key ~version)
              | None -> ignore (kv.Kv.delete ~tid key));
              Hashtbl.replace oracle.acked key what;
              Hashtbl.remove oracle.pending key;
              (* Promotion fires on Value-Storage reads; a write-only
                 sweep would leave the NVM tier empty and the promote
                 copy untested. Each thread re-reads its range's first
                 key after every write — its CLOCK saturates, the key
                 migrates into the tier mid-run, and nvm-persist crash
                 points start landing inside promote copies. Reads
                 don't move the oracle. *)
              if cfg.store = `Prism && cfg.placement = `Hotness then
                ignore (kv.Kv.get ~tid hot))
            thread_ops))
    ops

let keys_of_ops ops =
  let keys = Hashtbl.create 256 in
  Array.iter
    (fun tops -> Array.iter (fun (key, _) -> Hashtbl.replace keys key ()) tops)
    ops;
  keys

let check_recovered cfg kv oracle ~crash_point ~boundary ~keys =
  let violations = ref [] in
  let admissible key =
    let base =
      match Hashtbl.find_opt oracle.acked key with
      | None | Some None -> [ None ]
      | Some (Some v) -> [ Some v ]
    in
    match Hashtbl.find_opt oracle.pending key with
    | None -> base
    | Some p -> if List.mem p base then base else p :: base
  in
  let describe = function
    | None -> "absent"
    | Some v -> Printf.sprintf "version %d" v
  in
  Hashtbl.iter
    (fun key () ->
      let adm = admissible key in
      let fail detail =
        violations :=
          { crash_point; boundary; key; detail } :: !violations
      in
      match kv.Kv.get ~tid:0 key with
      | None ->
          if not (List.mem None adm) then
            fail
              (Printf.sprintf
                 "lost acknowledged write: expected %s, found nothing"
                 (String.concat " or " (List.map describe adm)))
      | Some bytes -> (
          match Prism_workload.Ycsb.version_of bytes with
          | None -> fail "recovered value has no version stamp"
          | Some v ->
              if not (List.mem (Some v) adm) then
                fail
                  (Printf.sprintf
                     "recovered version %d, expected %s (resurrected or \
                      phantom write)"
                     v
                     (String.concat " or " (List.map describe adm)))
              else if
                not (Bytes.equal bytes (value_of cfg ~key ~version:v))
              then fail (Printf.sprintf "payload of version %d corrupted" v)))
    keys;
  !violations

(* ---- Prism sweep: crash at every k-th durability boundary ---- *)

let scenario cfg =
  {
    Setup.default_scenario with
    Setup.records = cfg.threads * cfg.keys_per_thread;
    value_size = cfg.value_size;
    threads = cfg.threads;
    num_ssds = 2;
    seed = cfg.seed;
  }

let prism_tweak cfg c =
  (* Small PWBs force reclamation into Value Storage mid-run, so crashes
     also land between chunk-write completions (the ssd-write boundary
     sweep is vacuous if nothing ever leaves the write buffer). *)
  let c = { c with Prism_core.Config.pwb_size = 8 * 1024 } in
  (* Hotness placement adds a third durability path: promotions copy a
     value into the NVM tier with a [write_persist], which the nvm-persist
     hook counts — so the sweep lands crashes inside promote copies and
     between a tier write and its HSIT coupling update. A small tier
     forces demotion write-backs into the sweep too. *)
  let c =
    match cfg.placement with
    | `Static -> c
    | `Hotness -> Prism_core.Config.hotness ~tier_size:(16 * 1024) c
  in
  if cfg.fault_skip_hsit_flush then
    { c with Prism_core.Config.fault_skip_hsit_flush = true }
  else c

type prism_boundary = Nvm_persist | Ssd_write

let boundary_name = function
  | Nvm_persist -> "nvm-persist"
  | Ssd_write -> "ssd-write"

let install_prism_hook store boundary ~state ~target =
  (* [state] carries the boundary count at installation time (store
     creation also persists); targets are relative to it so clean-run and
     crash-run counts line up by determinism of the simulation prefix. *)
  match boundary with
  | Nvm_persist ->
      let nvm = Prism_core.Store.nvm store in
      state := Prism_media.Nvm.persist_count nvm;
      Prism_media.Nvm.set_persist_hook nvm
        (Some (fun c -> if c - !state = target then raise Crash_now))
  | Ssd_write ->
      let seen = ref 0 in
      state := 0;
      Array.iter
        (fun vs ->
          Prism_media.Ssd_image.set_write_hook (Prism_core.Value_storage.image vs)
            (Some
               (fun _ ->
                 incr seen;
                 if !seen = target then raise Crash_now)))
        (Prism_core.Store.value_storages store)

let uninstall_prism_hooks store =
  Prism_media.Nvm.set_persist_hook (Prism_core.Store.nvm store) None;
  Array.iter
    (fun vs ->
      Prism_media.Ssd_image.set_write_hook (Prism_core.Value_storage.image vs)
        None)
    (Prism_core.Store.value_storages store)

(* Runs one simulation; [target = 0] means no crash (clean run). Returns
   the clean-run boundary counts or the violations found after crash
   recovery. [tie] lets a schedule explorer drive the interleaving of the
   run (DPOR over crash-recovery runs). *)
let run_prism ?(tie = Engine.Fifo) cfg boundary ~target =
  let engine = Engine.create () in
  Engine.set_tie_break engine tie;
  let oracle = make_oracle () in
  let handles = ref None in
  let state = ref 0 in
  Engine.spawn engine (fun () ->
      let kv, store = Setup.prism ~tweak:(prism_tweak cfg) engine (scenario cfg) in
      handles := Some (kv, store);
      if target > 0 then install_prism_hook store boundary ~state ~target
      else
        (* Clean run: remember the creation-time persist count so the
           reported boundary totals cover only the workload. *)
        state :=
          Prism_media.Nvm.persist_count (Prism_core.Store.nvm store);
      run_workload cfg kv oracle (all_ops cfg));
  let crashed =
    match Engine.run engine with
    | (_ : float) -> false
    | exception Crash_now -> true
  in
  match (!handles, crashed) with
  | None, _ -> Error `Crashed_before_store (* target inside store creation *)
  | Some (_, store), false ->
      let nvm_boundaries =
        Prism_media.Nvm.persist_count (Prism_core.Store.nvm store) - !state
      in
      let ssd_boundaries =
        Array.fold_left
          (fun acc vs ->
            acc
            + Prism_media.Ssd_image.write_count (Prism_core.Value_storage.image vs))
          0
          (Prism_core.Store.value_storages store)
      in
      Ok (`Completed (nvm_boundaries, ssd_boundaries))
  | Some (kv, store), true ->
      uninstall_prism_hooks store;
      Engine.clear_pending engine;
      Prism_core.Store.crash store;
      let violations = ref [] in
      Engine.spawn engine (fun () ->
          ignore (Prism_core.Store.recover store);
          violations :=
            check_recovered cfg kv oracle ~crash_point:target
              ~boundary:(boundary_name boundary)
              ~keys:(keys_of_ops (all_ops cfg)));
      ignore (Engine.run engine);
      Ok (`Crashed !violations)

(* One composable crash-recovery run, exposed so tests can drive it with
   a Guided tie-break and explore crash schedules with {!Dpor}. *)
let prism_crash_once ?tie cfg ~boundary ~target =
  let b = match boundary with
    | `Nvm_persist -> Nvm_persist
    | `Ssd_write -> Ssd_write
  in
  match run_prism ?tie cfg b ~target with
  | Ok (`Completed counts) -> `Completed counts
  | Ok (`Crashed violations) -> `Crashed violations
  | Error `Crashed_before_store -> `Crashed_before_store

(* ---- KVell sweep: crash on an even virtual-time grid ---- *)

let kvell_instance cfg engine =
  Explore.kvell_sync engine (scenario cfg)

let run_kvell cfg ~crash_at ~crash_point =
  let engine = Engine.create () in
  let oracle = make_oracle () in
  let handles = ref None in
  (match crash_at with
  | Some t -> Engine.schedule engine ~after:t (fun () -> raise Crash_now)
  | None -> ());
  Engine.spawn engine (fun () ->
      let kvell, kv = kvell_instance cfg engine in
      handles := Some (kvell, kv);
      run_workload cfg kv oracle (all_ops cfg));
  let crashed =
    match Engine.run engine with
    | (_ : float) -> false
    | exception Crash_now -> true
  in
  if not crashed then Ok (`Completed (Engine.now engine, Engine.events_executed engine))
  else
    match !handles with
    | None -> Error `Crashed_before_store
    | Some (kvell, kv) ->
        Engine.clear_pending engine;
        Prism_baselines.Kvell.crash kvell;
        let violations = ref [] in
        Engine.spawn engine (fun () ->
            Prism_baselines.Kvell.recover kvell;
            violations :=
              check_recovered cfg kv oracle ~crash_point
                ~boundary:"virtual-time"
                ~keys:(keys_of_ops (all_ops cfg)));
        ignore (Engine.run engine);
        Ok (`Crashed !violations)

(* ---- LSM sweep: crash at WAL-append and SSTable-publish boundaries ---- *)

(* A checker-sized RocksDB-NVM: tiny memtable and level budgets so a
   short workload exercises flushes and compactions (with production
   sizes nothing would ever leave the memtable and the publish sweep
   would be vacuous). Everything on one NVM device — media layout is
   irrelevant to recovery logic. *)
let lsm_instance cfg engine =
  let open Prism_device in
  let nvm = Model.create engine Spec.optane_dcpmm in
  let target = Prism_baselines.Target.nvm_dev nvm in
  let lcfg =
    {
      Prism_baselines.Lsm_tree.name = "LSM(sweep)";
      memtable_bytes = 2 * 1024;
      l0_mode = Prism_baselines.Lsm_tree.Tables;
      l0_compaction_trigger = 2;
      l0_slowdown = 4;
      l0_stall = 6;
      level_base_bytes = 8 * 1024;
      level_multiplier = 4;
      table_target_bytes = 2 * 1024;
      block_cache_bytes = 16 * 1024;
      wal_enabled = cfg.lsm_wal;
    }
  in
  let tree =
    Prism_baselines.Lsm_tree.create engine lcfg ~cost:Cost.default
      ~rng:(Rng.create cfg.seed) ~wal:target ~l0:target ~levels:target
  in
  (tree, Kv.of_lsm tree)

type lsm_boundary = Wal_append | Sstable_publish

let lsm_boundary_name = function
  | Wal_append -> "wal-append"
  | Sstable_publish -> "sstable-publish"

let run_lsm cfg boundary ~target =
  let open Prism_baselines in
  let engine = Engine.create () in
  let oracle = make_oracle () in
  let handles = ref None in
  Engine.spawn engine (fun () ->
      let tree, kv = lsm_instance cfg engine in
      handles := Some (tree, kv);
      if target > 0 then begin
        let hook = Some (fun c -> if c = target then raise Crash_now) in
        match boundary with
        | Wal_append -> Lsm_tree.set_wal_hook tree hook
        | Sstable_publish -> Lsm_tree.set_publish_hook tree hook
      end;
      run_workload cfg kv oracle (all_ops cfg));
  let crashed =
    match Engine.run engine with
    | (_ : float) -> false
    | exception Crash_now -> true
  in
  match (!handles, crashed) with
  | None, _ -> Error `Crashed_before_store
  | Some (tree, _), false ->
      Ok (`Completed (Lsm_tree.wal_appends tree, Lsm_tree.publishes tree))
  | Some (tree, kv), true ->
      Lsm_tree.set_wal_hook tree None;
      Lsm_tree.set_publish_hook tree None;
      Engine.clear_pending engine;
      Lsm_tree.crash tree;
      let violations = ref [] in
      Engine.spawn engine (fun () ->
          Lsm_tree.recover tree;
          violations :=
            check_recovered cfg kv oracle ~crash_point:target
              ~boundary:(lsm_boundary_name boundary)
              ~keys:(keys_of_ops (all_ops cfg)));
      ignore (Engine.run engine);
      Ok (`Crashed !violations)

(* ---- cluster sweep: kill the coordinator at every 2PC log-persist
   boundary ----

   The interesting crash points of a 2PC commit are the durable log
   appends: the coordinator's commit record (the transaction's ack
   point) and the participants' prepare records / applied markers. A
   persist hook on the coordinator log sweeps the first family,
   a shared hook over every shard's prepare log the second. Recovery
   must then agree with itself across shards: an acknowledged commit
   keeps every write (the per-key oracle), and the one in-flight batch
   per thread is all-or-nothing (the torn-transaction audit below). *)

type cluster_op =
  | CK_single of string * int option
  | CK_batch of (string * int) list

(* Per-thread disjoint ranges as in [thread_ops]; every [txn_every]-th
   op is a multi-key write batch over the thread's own range — the keys
   still hash across shards, so most batches have several 2PC
   participants. Batch versions live in a reserved range (>= 1000) so a
   recovered value names exactly one write. *)
let cluster_thread_ops cfg tid =
  let rng = Rng.create (Int64.add cfg.seed (Int64.of_int ((tid * 7919) + 1))) in
  let key_at i = Prism_workload.Ycsb.key_of ((tid * cfg.keys_per_thread) + i) in
  Array.init cfg.ops_per_thread (fun j ->
      if cfg.txn_every > 0 && j mod cfg.txn_every = cfg.txn_every - 1 then begin
        let base = Rng.int rng cfg.keys_per_thread in
        let n = min cfg.keys_per_thread (2 + Rng.int rng 2) in
        CK_batch
          (List.init n (fun s ->
               (key_at ((base + s) mod cfg.keys_per_thread), 1000 + (j * 10) + s)))
      end
      else
        let key = key_at (Rng.int rng cfg.keys_per_thread) in
        if Rng.int rng 5 = 0 then CK_single (key, None)
        else CK_single (key, Some (j + 1)))

let all_cluster_ops cfg = Array.init cfg.threads (cluster_thread_ops cfg)

let cluster_keys cfg =
  let keys = Hashtbl.create 256 in
  for i = 0 to (cfg.threads * cfg.keys_per_thread) - 1 do
    Hashtbl.replace keys (Prism_workload.Ycsb.key_of i) ()
  done;
  keys

let run_cluster_workload cfg cluster (kv : Kv.t) oracle inflight ops =
  Array.iteri
    (fun tid thread_ops ->
      Engine.spawn (Engine.current ()) (fun () ->
          Array.iter
            (fun op ->
              match op with
              | CK_single (key, what) ->
                  Hashtbl.replace oracle.pending key what;
                  (match what with
                  | Some version ->
                      kv.Kv.put ~tid key (value_of cfg ~key ~version)
                  | None -> ignore (kv.Kv.delete ~tid key));
                  Hashtbl.replace oracle.acked key what;
                  Hashtbl.remove oracle.pending key
              | CK_batch writes -> (
                  List.iter
                    (fun (k, v) ->
                      Hashtbl.replace oracle.pending k (Some v))
                    writes;
                  Hashtbl.replace inflight tid writes;
                  let payload =
                    List.map
                      (fun (k, v) -> (k, value_of cfg ~key:k ~version:v))
                      writes
                  in
                  let outcome =
                    Prism_cluster.Cluster.batch cluster ~tid payload
                  in
                  Hashtbl.remove inflight tid;
                  match outcome with
                  | Prism_cluster.Cluster.Committed ->
                      List.iter
                        (fun (k, v) ->
                          Hashtbl.replace oracle.acked k (Some v);
                          Hashtbl.remove oracle.pending k)
                        writes
                  | Prism_cluster.Cluster.Aborted ->
                      (* Aborted writes must never become visible: the
                         oracle keeps only the prior acked value. *)
                      List.iter
                        (fun (k, _) -> Hashtbl.remove oracle.pending k)
                        writes))
            thread_ops))
    ops

(* An in-flight batch (crash cut its 2PC short) must recover
   all-or-nothing: either the commit record was durable — recovery
   re-applies every write — or it wasn't, and no write survives. *)
let check_batch_atomicity (kv : Kv.t) inflight ~crash_point ~boundary =
  Hashtbl.fold
    (fun _tid writes acc ->
      let visible =
        List.map
          (fun (k, v) ->
            match kv.Kv.get ~tid:0 k with
            | Some b -> Prism_workload.Ycsb.version_of b = Some v
            | None -> false)
          writes
      in
      if List.exists Fun.id visible && not (List.for_all Fun.id visible)
      then
        {
          crash_point;
          boundary;
          key = fst (List.hd writes);
          detail =
            Printf.sprintf
              "torn transaction: %d of %d batch writes visible after \
               recovery (2PC must be all-or-nothing)"
              (List.length (List.filter Fun.id visible))
              (List.length visible);
        }
        :: acc
      else acc)
    inflight []

type cluster_boundary = Coord_log | Prepare_log

let cluster_boundary_name = function
  | Coord_log -> "coord-log-persist"
  | Prepare_log -> "prepare-log-persist"

let cluster_cfg_of cfg =
  {
    Prism_cluster.Cluster.default with
    Prism_cluster.Cluster.shards = max 1 cfg.shards;
    fault_skip_log_flush = cfg.fault_skip_log_flush;
    seed = cfg.seed;
  }

let uninstall_cluster_hooks cfg cluster =
  Prism_media.Nvm.set_persist_hook
    (Prism_cluster.Cluster.coordinator_log cluster)
    None;
  for i = 0 to max 1 cfg.shards - 1 do
    Prism_media.Nvm.set_persist_hook
      (Prism_cluster.Cluster.prepare_log cluster i)
      None
  done

let run_cluster cfg boundary ~target =
  let engine = Engine.create () in
  let oracle = make_oracle () in
  let inflight = Hashtbl.create 8 in
  let handles = ref None in
  Engine.spawn engine (fun () ->
      let cluster, kv =
        Prism_cluster.Cluster.of_scenario ~tweak:(prism_tweak cfg) engine
          (cluster_cfg_of cfg) (scenario cfg)
      in
      handles := Some (cluster, kv);
      (if target > 0 then
         match boundary with
         | Coord_log ->
             let nvm = Prism_cluster.Cluster.coordinator_log cluster in
             let state = Prism_media.Nvm.persist_count nvm in
             Prism_media.Nvm.set_persist_hook nvm
               (Some (fun c -> if c - state = target then raise Crash_now))
         | Prepare_log ->
             let seen = ref 0 in
             for i = 0 to max 1 cfg.shards - 1 do
               Prism_media.Nvm.set_persist_hook
                 (Prism_cluster.Cluster.prepare_log cluster i)
                 (Some
                    (fun _ ->
                      incr seen;
                      if !seen = target then raise Crash_now))
             done);
      run_cluster_workload cfg cluster kv oracle inflight
        (all_cluster_ops cfg));
  let crashed =
    match Engine.run engine with
    | (_ : float) -> false
    | exception Crash_now -> true
  in
  match (!handles, crashed) with
  | None, _ -> Error `Crashed_before_store
  | Some (cluster, _), false ->
      let clog_total =
        Prism_media.Nvm.persist_count
          (Prism_cluster.Cluster.coordinator_log cluster)
      in
      let plog_total = ref 0 in
      for i = 0 to max 1 cfg.shards - 1 do
        plog_total :=
          !plog_total
          + Prism_media.Nvm.persist_count
              (Prism_cluster.Cluster.prepare_log cluster i)
      done;
      Ok (`Completed (clog_total, !plog_total))
  | Some (cluster, kv), true ->
      uninstall_cluster_hooks cfg cluster;
      Engine.clear_pending engine;
      Prism_cluster.Cluster.crash cluster;
      let violations = ref [] in
      Engine.spawn engine (fun () ->
          let resolutions = Prism_cluster.Cluster.recover cluster in
          (* Every in-doubt transaction got a definite fate; the audits
             below verify that fate against the acknowledgement oracle,
             which is exactly "recovery agrees on commit/abort". *)
          ignore
            (resolutions : Prism_cluster.Cluster.resolution list);
          let bname = cluster_boundary_name boundary in
          violations :=
            check_batch_atomicity kv inflight ~crash_point:target
              ~boundary:bname
            @ check_recovered cfg kv oracle ~crash_point:target
                ~boundary:bname ~keys:(cluster_keys cfg));
      ignore (Engine.run engine);
      Ok (`Crashed !violations)

(* ---- driver ----

   Parallel shape: the clean run (which measures boundary totals) is
   serial, then every crash target becomes one fleet job — each job
   builds its own engine, store and oracle from [cfg], so jobs share
   nothing mutable. The merge walks results in ascending target order
   and replays the serial driver's control flow exactly: count, collect
   violations, call [progress], and stop a boundary's sweep at the first
   [`Completed] (the serial loop stops issuing targets there; the merge
   stops {e consuming} there, discarding the speculatively-run tail), so
   the report is byte-identical to a serial sweep for any [jobs]. *)

let targets_of ~k ~total =
  let rec mk t acc = if t > total then Array.of_list (List.rev acc) else mk (t + k) (t :: acc) in
  mk k []

(* Run [runner target] for every target in parallel and fold the results
   in target order with serial early-stop semantics. *)
let sweep_boundary pool ~runner ~name ~progress ~crash_points ~violations
    ~targets =
  let results = Fleet.map pool (Array.length targets) (fun i -> runner targets.(i)) in
  try
    Array.iteri
      (fun i result ->
        match result with
        | Ok (`Crashed v) ->
            incr crash_points;
            violations := v @ !violations;
            progress ~boundary:name ~crash_point:targets.(i)
        | Ok (`Completed _) ->
            (* Past the last boundary of this run; the serial sweep stops
               here, so later targets are dropped unconsumed. *)
            raise Exit
        | Error `Crashed_before_store -> ())
      results
  with Exit -> ()

let run ?(progress = fun ~boundary:_ ~crash_point:_ -> ()) ?(jobs = 1) cfg =
  let k = max 1 cfg.crash_every in
  Fleet.with_pool ~jobs (fun pool ->
      match cfg.store with
      | `Prism ->
          let nvm_total, ssd_total =
            match run_prism cfg Nvm_persist ~target:0 with
            | Ok (`Completed counts) -> counts
            | Ok (`Crashed _) | Error _ -> assert false
          in
          let crash_points = ref 0 in
          let violations = ref [] in
          let sweep boundary total =
            sweep_boundary pool
              ~runner:(fun target -> run_prism cfg boundary ~target)
              ~name:(boundary_name boundary) ~progress ~crash_points
              ~violations ~targets:(targets_of ~k ~total)
          in
          sweep Nvm_persist nvm_total;
          sweep Ssd_write ssd_total;
          {
            crash_points = !crash_points;
            boundaries =
              [ ("nvm-persist", nvm_total); ("ssd-write", ssd_total) ];
            violations = List.rev !violations;
          }
      | `Cluster ->
          let clog_total, plog_total =
            match run_cluster cfg Coord_log ~target:0 with
            | Ok (`Completed counts) -> counts
            | Ok (`Crashed _) | Error _ -> assert false
          in
          let crash_points = ref 0 in
          let violations = ref [] in
          let sweep boundary total =
            sweep_boundary pool
              ~runner:(fun target -> run_cluster cfg boundary ~target)
              ~name:(cluster_boundary_name boundary) ~progress ~crash_points
              ~violations ~targets:(targets_of ~k ~total)
          in
          sweep Coord_log clog_total;
          sweep Prepare_log plog_total;
          {
            crash_points = !crash_points;
            boundaries =
              [
                ("coord-log-persist", clog_total);
                ("prepare-log-persist", plog_total);
              ];
            violations = List.rev !violations;
          }
      | `Lsm ->
          let wal_total, publish_total =
            match run_lsm cfg Wal_append ~target:0 with
            | Ok (`Completed counts) -> counts
            | Ok (`Crashed _) | Error _ -> assert false
          in
          let crash_points = ref 0 in
          let violations = ref [] in
          let sweep boundary total =
            sweep_boundary pool
              ~runner:(fun target -> run_lsm cfg boundary ~target)
              ~name:(lsm_boundary_name boundary) ~progress ~crash_points
              ~violations ~targets:(targets_of ~k ~total)
          in
          sweep Wal_append wal_total;
          sweep Sstable_publish publish_total;
          {
            crash_points = !crash_points;
            boundaries =
              [ ("wal-append", wal_total); ("sstable-publish", publish_total) ];
            violations = List.rev !violations;
          }
      | `Kvell ->
          let total_time, total_events =
            match run_kvell cfg ~crash_at:None ~crash_point:0 with
            | Ok (`Completed r) -> r
            | Ok (`Crashed _) | Error _ -> assert false
          in
          let n_points = max 1 (total_events / k) in
          let crash_points = ref 0 in
          let violations = ref [] in
          let results =
            Fleet.map pool n_points (fun idx ->
                let i = idx + 1 in
                let t =
                  total_time *. float_of_int i /. float_of_int (n_points + 1)
                in
                run_kvell cfg ~crash_at:(Some t) ~crash_point:i)
          in
          Array.iteri
            (fun idx result ->
              match result with
              | Ok (`Crashed v) ->
                  incr crash_points;
                  violations := v @ !violations;
                  progress ~boundary:"virtual-time" ~crash_point:(idx + 1)
              | Ok (`Completed _) | Error `Crashed_before_store -> ())
            results;
          {
            crash_points = !crash_points;
            boundaries = [ ("virtual-time", n_points) ];
            violations = List.rev !violations;
          })
