open Prism_sim
open Prism_harness

type fault =
  | No_fault
  | Skip_svc_invalidate
  | Skip_hsit_flush
  | Scan_stale_snapshot
  | Scan_skip_pwb
  | Scan_drop_key
  | Skip_2pc_log_flush

type config = {
  store : [ `Prism | `Kvell ];
  placement : [ `Static | `Hotness ];
  threads : int;
  records : int;
  value_size : int;
  ops_per_thread : int;
  theta : float;
  delete_every : int;
  scan_every : int;
  scan_check : [ `Strict | `Weak ];
  fault : fault;
  shards : int;
  txn_every : int;
  seed : int64;
}

let default =
  {
    store = `Prism;
    placement = `Static;
    threads = 4;
    records = 128;
    value_size = 64;
    ops_per_thread = 48;
    theta = 0.6;
    delete_every = 8;
    scan_every = 16;
    scan_check = `Strict;
    fault = No_fault;
    shards = 1;
    txn_every = 0;
    seed = 1L;
  }

(* Cluster mode: a hash-partitioned Prism cluster replaces the single
   store, and (with [txn_every > 0]) a slice of updates become multi-key
   2PC write batches the checker folds in as atomic anchors. *)
let cluster_mode cfg =
  cfg.store = `Prism && (cfg.shards > 1 || cfg.txn_every > 0)

type schedule_stats = {
  index : int;
  tie_seed : int64;
  events : int;
  clock : float;
  choices : int;
  fingerprint : int;
}

type failure = { stats : schedule_stats; violation : string }

type report = {
  schedules : schedule_stats list;
  distinct : int;
  failures : failure list;
}

(* Deterministic per-schedule tie seed: schedule [i] of master seed [s]
   always explores the same interleaving (SplitMix64's odd-gamma mix). *)
let tie_seed_for seed i =
  Int64.logxor seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)

let preload_value cfg key =
  Prism_workload.Ycsb.value_for ~size:cfg.value_size ~key ~version:0

(* The YCSB-A slice: a 50/50 read/update stream from the shared generator,
   with a sprinkle of deletes and short scans so all four operations get
   history coverage. Generated once per (config, seed) — every schedule of
   a run replays the same per-thread op lists, so only the interleaving
   differs. *)
type op =
  | O_put of string * bytes
  | O_get of string
  | O_delete of string
  | O_scan of string * int
  | O_batch of (string * bytes) list

let gen_ops cfg =
  let rng = Rng.create cfg.seed in
  let gen =
    Prism_workload.Ycsb.create Prism_workload.Ycsb.ycsb_a ~records:cfg.records
      ~theta:cfg.theta ~value_size:cfg.value_size rng
  in
  let spice = Rng.create (Int64.lognot cfg.seed) in
  (* Batch payloads carry versions from a reserved range so no two writes
     in the history share bytes — value equality is what lets the checker
     tell linearization points apart. *)
  let batch_version = ref 1_000_000 in
  (* Scans stay single-shard: a scatter-gather scan is not covered by the
     cluster's strict-serializability argument (see [Cluster.scan]), so
     multi-shard workloads trade them for reads. *)
  let scans_ok = cfg.shards <= 1 in
  Array.init cfg.threads (fun _ ->
      Array.init cfg.ops_per_thread (fun _ ->
          match Prism_workload.Ycsb.next gen with
          | Prism_workload.Ycsb.Update (key, value) ->
              if
                cfg.txn_every > 0
                && Rng.int spice cfg.txn_every = 0
              then
                O_batch
                  ((key, value)
                  :: List.init 2 (fun _ ->
                         let k =
                           Prism_workload.Ycsb.key_of
                             (Rng.int spice cfg.records)
                         in
                         incr batch_version;
                         ( k,
                           Prism_workload.Ycsb.value_for
                             ~size:cfg.value_size ~key:k
                             ~version:!batch_version )))
              else if Rng.int spice cfg.delete_every = 0 then O_delete key
              else O_put (key, value)
          | Prism_workload.Ycsb.Read key ->
              if scans_ok && Rng.int spice cfg.scan_every = 0 then
                O_scan (key, 8)
              else O_get key
          | Prism_workload.Ycsb.Insert (key, value) -> O_put (key, value)
          | Prism_workload.Ycsb.Scan (key, n) ->
              if scans_ok then O_scan (key, n) else O_get key))

let scenario cfg =
  {
    Setup.default_scenario with
    Setup.records = cfg.records;
    value_size = cfg.value_size;
    threads = cfg.threads;
    num_ssds = 2;
    theta = cfg.theta;
    seed = cfg.seed;
  }

let tweak cfg c =
  (* A checker-sized PWB: small enough that reclamation migrates values to
     Value Storage during the run, so reads exercise the full
     PWB -> VS -> SVC path (with the scenario-sized 64 KiB PWBs the whole
     dataset stays in the write buffer and the cache never fills). *)
  let c = { c with Prism_core.Config.pwb_size = 16 * 1024 } in
  (* A checker-sized NVM tier: with the ~8 KiB dataset, 16 KiB holds the
     hot set but a cold key still has to be demoted to the SSD once the
     CLOCK sweep catches it, so schedules interleave client operations
     with both promotion copies and demotion write-backs. *)
  let c =
    match cfg.placement with
    | `Static -> c
    | `Hotness -> Prism_core.Config.hotness ~tier_size:(16 * 1024) c
  in
  match cfg.fault with
  | No_fault -> c
  (* Cluster-level fault: injected via the cluster config in [make_kv],
     not the store config — and only observable across a crash, so live
     exploration of it is (correctly) clean. *)
  | Skip_2pc_log_flush -> c
  | Skip_svc_invalidate ->
      { c with Prism_core.Config.fault_skip_svc_invalidate = true }
  | Skip_hsit_flush -> { c with Prism_core.Config.fault_skip_hsit_flush = true }
  | Scan_stale_snapshot ->
      { c with Prism_core.Config.fault_scan_stale_snapshot = true }
  | Scan_skip_pwb -> { c with Prism_core.Config.fault_scan_skip_pwb = true }
  | Scan_drop_key -> { c with Prism_core.Config.fault_scan_drop_key = true }

(* KVell through a synchronous adapter: [Kv.of_kvell] pipelines puts like
   KVell's injector threads, which acknowledges before durability — fine
   for throughput runs, wrong for a checker that treats the return as the
   response endpoint. *)
let kvell_sync engine s =
  let open Prism_device in
  let d = s.Setup.records * s.Setup.value_size in
  let kvell =
    Prism_baselines.Kvell.create engine ~cost:Cost.default
      ~rng:(Rng.create s.Setup.seed)
      ~ssd_specs:(List.init s.Setup.num_ssds (fun _ -> Spec.samsung_980_pro))
      ~workers_per_ssd:3 ~queue_depth:64
      ~page_cache_bytes:(max (256 * 1024) (d * 32 / 100))
  in
  let kv = Kv.of_kvell kvell in
  ( kvell,
    {
      kv with
      Kv.name = "KVell(sync)";
      put = (fun ~tid:_ key value -> Prism_baselines.Kvell.put kvell key value);
    } )

let make_kv cfg engine =
  if cluster_mode cfg then begin
    let ccfg =
      {
        Prism_cluster.Cluster.default with
        Prism_cluster.Cluster.shards = max 1 cfg.shards;
        fault_skip_log_flush = cfg.fault = Skip_2pc_log_flush;
        seed = cfg.seed;
      }
    in
    let cluster, kv =
      Prism_cluster.Cluster.of_scenario ~tweak:(tweak cfg) engine ccfg
        (scenario cfg)
    in
    ( kv,
      Some
        (fun ~tid writes ->
          Prism_cluster.Cluster.batch cluster ~tid writes
          = Prism_cluster.Cluster.Committed) )
  end
  else
    match cfg.store with
    | `Prism ->
        let kv, _store =
          Setup.prism ~tweak:(tweak cfg) engine (scenario cfg)
        in
        (kv, None)
    | `Kvell ->
        let _kvell, kv = kvell_sync engine (scenario cfg) in
        (kv, None)

let run_op hist kv batch ~tid = function
  | O_put (key, value) -> kv.Kv.put ~tid key value
  | O_get key -> ignore (kv.Kv.get ~tid key)
  | O_delete key -> ignore (kv.Kv.delete ~tid key)
  | O_scan (key, n) -> ignore (kv.Kv.scan ~tid key n)
  | O_batch writes -> (
      match batch with
      | Some submit ->
          ignore
            (History.record_batch hist ~tid writes (fun () ->
                 submit ~tid writes))
      | None ->
          (* No transactional backend: degrade to individual puts so the
             workload stays runnable (gen_ops only emits batches when
             [txn_every > 0], which implies cluster mode for Prism). *)
          List.iter (fun (k, v) -> kv.Kv.put ~tid k v) writes)

let run_one cfg ~index ~tie_seed ~tie =
  let engine = Engine.create () in
  Engine.set_tie_break engine tie;
  let hist = History.create () in
  let ops = gen_ops cfg in
  let kv, batch = make_kv cfg engine in
  let kv = History.wrap hist kv in
  History.set_enabled hist false;
  Engine.spawn engine (fun () ->
      for i = 0 to cfg.records - 1 do
        let key = Prism_workload.Ycsb.key_of i in
        kv.Kv.put ~tid:0 key (preload_value cfg key)
      done;
      kv.Kv.quiesce ();
      History.set_enabled hist true;
      Array.iteri
        (fun tid thread_ops ->
          Engine.spawn engine (fun () ->
              Array.iter (run_op hist kv batch ~tid) thread_ops))
        ops);
  let clock = Engine.run engine in
  let events = History.events hist in
  let choices = Engine.recorded_choices engine in
  let stats =
    {
      index;
      tie_seed;
      events = Array.length events;
      clock;
      choices = Array.length choices;
      fingerprint =
        Hashtbl.hash
          (Array.to_list choices, Engine.events_executed engine, clock);
    }
  in
  let init_keys = List.init cfg.records Prism_workload.Ycsb.key_of in
  let preloaded = Hashtbl.create cfg.records in
  List.iter (fun k -> Hashtbl.replace preloaded k ()) init_keys;
  (* Preloaded keys start at version 0 of their deterministic payload;
     everything else starts absent. *)
  let init key =
    if Hashtbl.mem preloaded key then Some (preload_value cfg key) else None
  in
  let violation =
    match Linearize.check ~init ~init_keys ~scans:cfg.scan_check events with
    | Ok () -> None
    | Error v -> Some (Format.asprintf "%a" Linearize.pp_violation v)
  in
  (stats, choices, violation)

let run_schedule cfg ~index ~tie_seed =
  let stats, _choices, violation =
    run_one cfg ~index ~tie_seed ~tie:(Engine.Seeded tie_seed)
  in
  (stats, violation)

let run ?(progress = fun _ -> ()) ?(jobs = 1) ~schedules cfg =
  let stats = ref [] in
  let failures = ref [] in
  let fingerprints = Hashtbl.create (2 * schedules) in
  let merge (s, fail) =
    stats := s :: !stats;
    Hashtbl.replace fingerprints s.fingerprint ();
    (match fail with
    | Some violation -> failures := { stats = s; violation } :: !failures
    | None -> ());
    progress s
  in
  if jobs <= 1 then
    (* Serial: run and merge interleaved, so [progress] stays live. *)
    for i = 0 to schedules - 1 do
      merge (run_schedule cfg ~index:i ~tie_seed:(tie_seed_for cfg.seed i))
    done
  else begin
    (* Schedules are independent by construction (each names its own
       interleaving via its tie seed), so this is a pure fleet map;
       merging in index order makes the report byte-identical to the
       serial loop. *)
    let results =
      Prism_fleet.Fleet.with_pool ~jobs (fun pool ->
          Prism_fleet.Fleet.map pool schedules (fun i ->
              run_schedule cfg ~index:i ~tie_seed:(tie_seed_for cfg.seed i)))
    in
    Array.iter merge results
  end;
  {
    schedules = List.rev !stats;
    distinct = Hashtbl.length fingerprints;
    failures = List.rev !failures;
  }

let replay cfg ~tie_seed =
  let stats, fail = run_schedule cfg ~index:0 ~tie_seed in
  ignore stats;
  fail

(* ---- DPOR exploration ---- *)

type dpor_failure = {
  class_index : int;
  found_at_run : int;
  choices : int array;
  violation : string;
}

type dpor_report = {
  classes : int;
  runs : int;
  pruned : int;
  complete : bool;
  dpor_failures : dpor_failure list;
}

let run_dpor ?(progress = fun _ -> ()) ?(stop_on_failure = false) ?(jobs = 1)
    ~max_classes cfg =
  (* The run body must be pure with respect to exploration state so it
     can execute speculatively on a worker domain: no counters, no
     progress calls. The committed run number arrives via [on_commit]
     (serial order), which is where progress fires — so a stats line is
     only ever reported for runs the serial walk would have executed,
     with the index it would have carried. *)
  let run ~choose =
    let stats, _choices, violation =
      run_one cfg ~index:0 ~tie_seed:0L ~tie:(Engine.Guided choose)
    in
    (stats, violation)
  in
  let explore pool =
    Dpor.explore ?pool
      ~on_commit:(fun ~run:r (stats, _) -> progress { stats with index = r - 1 })
      ~stop_on:(fun (_, violation) -> stop_on_failure && violation <> None)
      ~max_classes ~dependent:History.conflicting run
  in
  let report =
    if jobs <= 1 then explore None
    else Prism_fleet.Fleet.with_pool ~jobs (fun p -> explore (Some p))
  in
  let dpor_failures =
    List.filter_map
      (fun (c : (schedule_stats * string option) Dpor.class_result) ->
        match snd c.Dpor.result with
        | Some violation ->
            Some
              {
                class_index = c.Dpor.index;
                found_at_run = c.Dpor.run;
                choices = c.Dpor.choices;
                violation;
              }
        | None -> None)
      report.Dpor.classes
  in
  {
    classes = report.Dpor.explored;
    runs = report.Dpor.runs;
    pruned = report.Dpor.pruned;
    complete = report.Dpor.complete;
    dpor_failures;
  }

(* ---- choice-list replay and shrinking ---- *)

let run_tie cfg ~tie =
  let _stats, choices, violation = run_one cfg ~index:0 ~tie_seed:0L ~tie in
  (choices, violation)

let record cfg ~tie_seed =
  let _stats, choices, violation =
    run_one cfg ~index:0 ~tie_seed ~tie:(Engine.Seeded tie_seed)
  in
  (choices, violation)

let replay_choices cfg ~choices =
  let _stats, _recorded, violation =
    run_one cfg ~index:0 ~tie_seed:0L ~tie:(Engine.Replay choices)
  in
  violation

type shrunk = {
  minimal : int array;
  non_fifo : int;
  replays : int;
  shrunk_violation : string;
}

let count_non_fifo choices =
  Array.fold_left (fun acc c -> if c <> 0 then acc + 1 else acc) 0 choices

(* Delta-debugging toward FIFO: choice 0 at a tie point is the FIFO pick
   (lowest seq), and an exhausted/over-long replay degrades to FIFO too,
   so "minimal" means "fewest decision points where the schedule departs
   from scheduling order". Reverting a choice changes every downstream
   tie set, so each candidate is validated by a full replay; whatever
   violation the replay reports keeps the candidate — the shrunk
   schedule stays a genuine counterexample throughout.

   A recorded schedule carries hundreds of non-FIFO decisions of which a
   handful matter, so reverting one index per replay would cost O(n)
   simulations. Instead, ddmin-style: revert whole blocks of decisions,
   halving the block size when no block can be reverted, down to single
   indices — O(k log n) replays when k decisions are load-bearing.
   [max_replays] caps the cost; the result is minimal-so-far if hit. *)
let shrink ?(max_replays = 200) cfg ~choices =
  match replay_choices cfg ~choices with
  | None -> None
  | Some v0 ->
      let n = Array.length choices in
      let cur = ref (Array.copy choices) in
      let violation = ref v0 in
      let replays = ref 1 in
      let try_zero lo hi =
        (* [lo, hi): revert to FIFO if a non-FIFO entry is in range and
           the budget allows; true when committed. *)
        let has_non_fifo = ref false in
        for i = lo to hi - 1 do
          if !cur.(i) <> 0 then has_non_fifo := true
        done;
        if (not !has_non_fifo) || !replays >= max_replays then false
        else begin
          let candidate = Array.copy !cur in
          Array.fill candidate lo (hi - lo) 0;
          incr replays;
          match replay_choices cfg ~choices:candidate with
          | Some v ->
              cur := candidate;
              violation := v;
              true
          | None -> false
        end
      in
      let block = ref (max 1 ((n + 3) / 4)) in
      let done_ = ref (n = 0) in
      while not !done_ do
        let improved = ref false in
        (* Right to left: late choices affect the least downstream
           schedule, so they revert with the highest success rate. *)
        let hi = ref n in
        while !hi > 0 do
          let lo = max 0 (!hi - !block) in
          if try_zero lo !hi then improved := true;
          hi := lo
        done;
        if !replays >= max_replays then done_ := true
        else if !block > 1 then block := !block / 2
        else if not !improved then done_ := true
      done;
      (* Trailing FIFO entries are no-ops under replay: strip them so the
         reported list is the shortest one that reproduces. *)
      let len = ref (Array.length !cur) in
      while !len > 0 && !cur.(!len - 1) = 0 do
        decr len
      done;
      let minimal = Array.sub !cur 0 !len in
      Some
        {
          minimal;
          non_fifo = count_non_fifo minimal;
          replays = !replays;
          shrunk_violation = !violation;
        }
