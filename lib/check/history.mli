(** Concurrent-history recording over a {!Prism_harness.Kv.t}.

    Each KV operation is logged as an invocation/response interval. The
    simulator is cooperative and single-threaded under the hood, so a
    global logical stamp — incremented at every invocation and response —
    totally orders all interval endpoints. Operation A precedes operation
    B ([A <_H B] in Herlihy–Wing terms) exactly when [A.resp < B.inv];
    intervals that overlap in stamps were genuinely concurrent in the
    simulation, because a stamp gap means the engine interleaved other
    steps between them.

    Endpoints are also stamped with virtual time, so a violation report
    can say {e when} the offending window opened and closed — which is
    what makes failing schedules minimizable.

    Recording additionally labels the simulation engine's pending events
    with the operation that owns them (see {!Prism_sim.Engine.annotate}),
    so a schedule explorer can tell which operations a tie-break decision
    actually orders and prune Mazurkiewicz-equivalent interleavings. *)

type call =
  | Put of string * bytes
  | Get of string
  | Delete of string
  | Scan of string * int
  | Batch of (string * bytes) list
      (** multi-key atomic write batch (2PC transaction) *)

type outcome =
  | Ok_unit
  | Got of bytes option
  | Existed of bool
  | Items of (string * bytes) list
  | Committed of bool  (** a batch's fate: committed or aborted *)

type event = {
  op : int;  (** dense index in invocation order *)
  tid : int;
  call : call;
  outcome : outcome;
  inv : int;  (** logical stamp at invocation *)
  resp : int;  (** logical stamp at response *)
  inv_time : float;  (** virtual time at invocation *)
  resp_time : float;  (** virtual time at response *)
}

type t

val create : unit -> t

(** [set_enabled t false] makes {!wrap}ped stores pass operations through
    unrecorded — used to keep the preload phase out of the history. *)
val set_enabled : t -> bool -> unit

(** [wrap t kv] is [kv] with every put/get/delete/scan logged into [t].
    [quiesce]/recovery passthroughs are unchanged. *)
val wrap : t -> Prism_harness.Kv.t -> Prism_harness.Kv.t

(** [record_batch t ~tid writes run] logs a multi-key write batch around
    [run] (which performs the transaction and returns whether it
    committed). [Kv.t] has no batch operation, so cluster workloads call
    this directly next to a {!wrap}ped store. *)
val record_batch :
  t -> tid:int -> (string * bytes) list -> (unit -> bool) -> bool

(** Completed events sorted by invocation stamp. Operations that never
    returned (e.g. cut off by a crash) are absent — they never completed,
    so they carry no obligation in the history. *)
val events : t -> event array

(** Number of recorded invocations (including any still in flight). *)
val length : t -> int

(** [op_label ~tid call] packs (key id, tid, kind) into a nonzero
    scheduling label for {!Prism_sim.Engine.annotate}. Key identity is an
    interned index assigned on first sight and stable for the rest of the
    process, so labels are exact (no hash collisions) and consistent
    across the many runs of one exploration; scan labels carry the
    interned start key so {!conflicting} can compare it against write
    keys. Raises [Invalid_argument] when [tid] exceeds {!max_tid} — tids
    must never alias silently into a shared conflict class. *)
val op_label : tid:int -> call -> int

(** Largest thread id representable in a scheduling label. *)
val max_tid : int

(** [conflicting a b] is the dependency relation over scheduling labels:
    true when reordering two events with these labels could change the
    outcome — same-key with at least one writer, a write at or above a
    scan's start key, either label unlabelled ([0], assumed to touch
    anything), or either label a batch (a batch's label cannot name its
    full key set, so it conservatively conflicts with everything). Two
    reads, two scans, writes strictly below a scan's start key, or
    operations on different keys commute. *)
val conflicting : int -> int -> bool

val pp_call : Format.formatter -> call -> unit

val pp_event : Format.formatter -> event -> unit
