(** Concurrent-history recording over a {!Prism_harness.Kv.t}.

    Each KV operation is logged as an invocation/response interval. The
    simulator is cooperative and single-threaded under the hood, so a
    global logical stamp — incremented at every invocation and response —
    totally orders all interval endpoints. Operation A precedes operation
    B ([A <_H B] in Herlihy–Wing terms) exactly when [A.resp < B.inv];
    intervals that overlap in stamps were genuinely concurrent in the
    simulation, because a stamp gap means the engine interleaved other
    steps between them. *)

type call =
  | Put of string * bytes
  | Get of string
  | Delete of string
  | Scan of string * int

type outcome =
  | Ok_unit
  | Got of bytes option
  | Existed of bool
  | Items of (string * bytes) list

type event = {
  op : int;  (** dense index in invocation order *)
  tid : int;
  call : call;
  outcome : outcome;
  inv : int;  (** logical stamp at invocation *)
  resp : int;  (** logical stamp at response *)
}

type t

val create : unit -> t

(** [set_enabled t false] makes {!wrap}ped stores pass operations through
    unrecorded — used to keep the preload phase out of the history. *)
val set_enabled : t -> bool -> unit

(** [wrap t kv] is [kv] with every put/get/delete/scan logged into [t].
    [quiesce]/recovery passthroughs are unchanged. *)
val wrap : t -> Prism_harness.Kv.t -> Prism_harness.Kv.t

(** Completed events sorted by invocation stamp. Operations that never
    returned (e.g. cut off by a crash) are absent — they never completed,
    so they carry no obligation in the history. *)
val events : t -> event array

(** Number of recorded invocations (including any still in flight). *)
val length : t -> int

val pp_call : Format.formatter -> call -> unit

val pp_event : Format.formatter -> event -> unit
