(** Dynamic partial-order reduction over the simulator's tie-break tree.

    The deterministic engine makes a schedule a pure function of its
    tie-break decisions, so the space of schedules is a finite tree: one
    node per tie set of size >= 2, one edge per member chosen. Blind seed
    sampling draws random paths of that tree and mostly resamples
    Mazurkiewicz-equivalent interleavings; this module walks the tree
    systematically instead, pruned so that {e every completed run is a
    distinct equivalence class}:

    - {b Sleep sets} (Godefroid): after a subtree rooted at alternative
      [a] is fully explored, [a] falls asleep in its siblings' subtrees
      and only wakes when a dependent transition executes. Choosing a
      sleeping alternative can only reproduce an explored class, so runs
      that reach an all-asleep tie set are abandoned as redundant — this
      is what makes completed runs pairwise inequivalent.
    - {b Persistent sets}: at each node, branching is restricted to the
      dependency-connected component of the default choice (under the
      caller's [dependent] relation over scheduling labels, typically
      {!History.conflicting}). Alternatives in other components commute
      with the whole component, and their own conflicts surface at later
      nodes. A dependency edge needs at least one labelled endpoint:
      unlabelled events ([label = 0] — engine machinery owned by no KV
      operation) are conservatively dependent with everything, so
      0–0 edges would connect every tie set completely and the tree
      would drown in reorderings of background events no history can
      distinguish. Machinery-only tie sets thus stay in scheduling
      order; branching happens exactly where an operation's event races
      something dependent on it.

    The reduction is exact when the dependency of two operations is
    visible at the tie sets where they are co-enabled (the lockstep
    micro-programs the tests enumerate); for the full store it is the
    usual local-independence approximation. [full = true] disables both
    prunings and branches on the entire tie set — the exhaustive
    brute-force reference.

    {b Exploration order.} The walk is tree-shaped: every decision point
    ever reached stays live until all its eligible alternatives have
    started a subtree, and each run targets one (node, alternative)
    pair by replaying the node's recorded path. [`Frontier] (the
    default) always branches at the {e shallowest} node that still has
    an uncovered dependent ordering, so a small [max_classes] budget
    spreads coverage across the whole schedule — each early class
    reorders a different region instead of permuting the tail of the
    first schedule. [`Deepest] branches at the most recently created
    node, reproducing classic DFS backtracking. Both orders visit the
    same class set at exhaustion (sleep sets are order-independent:
    an alternative falls asleep in its siblings as soon as its own
    subtree starts), so the heuristic only changes {e which} classes a
    truncated budget sees. *)

type 'a class_result = {
  index : int;  (** 0-based equivalence-class index, exploration order *)
  run : int;  (** 1-based simulation count when this class completed *)
  depth : int;  (** tie-break decision points in this run *)
  choices : int array;
      (** the full decision list — feed to {!Prism_sim.Engine.Replay} to
          reproduce this exact schedule *)
  result : 'a;
}

type 'a report = {
  classes : 'a class_result list;  (** in exploration order *)
  explored : int;  (** number of classes = completed runs *)
  runs : int;  (** total simulations, including pruned ones *)
  pruned : int;  (** runs abandoned as sleep-set redundant *)
  complete : bool;  (** the whole tree was exhausted within budget *)
}

exception Diverged
(** Raised when a re-run does not reproduce the recorded tie sets — the
    simulation under test is not deterministic, which breaks stateless
    exploration. *)

(** [explore ~max_classes ~dependent run] drives [run] repeatedly, each
    time passing a [choose] callback the engine's [Guided] policy calls
    at every tie decision; [choose] replays the targeted node's path and
    extends it by first-awake choices. Exploration stops when the tree is
    exhausted, [max_classes] classes completed, or [stop_on result] is
    true for a completed class. [dependent] is the conflict relation over
    event labels; [order] picks the frontier heuristic described above
    (default [`Frontier]); [full = true] disables persistent-set pruning
    {e and} sleep sets — the exhaustive walk used as a brute-force
    reference.

    [on_commit ~run result] fires once per committed run (including
    pruned ones), in commit order, with the 1-based run number — use it
    for progress reporting that must stay deterministic under [pool].

    {b Parallel exploration.} With [pool] (of more than one lane), runs
    execute speculatively on worker domains: the coordinator predicts
    the next few serial selections, farms them out, and commits results
    strictly in the serial selection order after re-validating each
    prediction against committed state (falling back to one serial step
    when a committed run's fresh nodes preempt the predicted target).
    Shared state is only ever mutated at commit, so the report — class
    set, indices, run numbers, choices, [complete] — is byte-identical
    to the serial walk for any worker count. [run] must then be
    domain-safe: each call builds its own engine/stores and shares
    nothing mutable. *)
val explore :
  ?order:[ `Frontier | `Deepest ] ->
  ?full:bool ->
  ?stop_on:('a -> bool) ->
  ?on_commit:(run:int -> 'a -> unit) ->
  ?pool:Prism_fleet.Fleet.pool ->
  max_classes:int ->
  dependent:(int -> int -> bool) ->
  (choose:(Prism_sim.Engine.alt array -> int) -> 'a) ->
  'a report
