type violation = {
  key : string;
  reason : string;
  ops : History.event list;
}

(* Per-key projection of the history. Linearizability is local (Herlihy &
   Wing): a map history is linearizable iff each key's subhistory is
   linearizable as a single register with put/get/delete semantics, so we
   check one key at a time and the search never sees the cross product of
   unrelated keys' interleavings. *)

type sem =
  | W of bytes (* put *)
  | R of bytes option (* get outcome *)
  | D of bool (* delete outcome: did the key exist *)

type op = { ev : History.event; sem : sem }

(* Register state between linearized ops, kept symbolic so memo entries
   compare in O(1): the value is named by the index of the put that wrote
   it, not by its bytes. [V_init] is distinct from [V_absent] because the
   key may have been preloaded before recording started. *)
type state = V_init | V_absent | V_put of int

(* Within one batch a later write to the same key wins (the cluster's
   documented semantics); expansion keeps only the winners. *)
let dedup_batch writes =
  let seen = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace seen k v) writes;
  List.filter_map
    (fun (k, _) ->
      match Hashtbl.find_opt seen k with
      | Some v ->
          Hashtbl.remove seen k;
          Some (k, v)
      | None -> None)
    writes

let project events =
  let by_key = Hashtbl.create 64 in
  let add key op =
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_key key) in
    Hashtbl.replace by_key key (op :: cur)
  in
  Array.iter
    (fun ev ->
      match (ev.History.call, ev.History.outcome) with
      | History.Put (key, v), History.Ok_unit -> add key { ev; sem = W v }
      | History.Get key, History.Got v -> add key { ev; sem = R v }
      | History.Delete key, History.Existed e -> add key { ev; sem = D e }
      | History.Scan _, _ -> ()
      (* A committed batch expands into independent per-key writes here —
         a sound under-constraint (per-key it behaves like a put); its
         atomicity obligation is enforced by the component search, where
         the batch linearizes as one multi-slot write. An aborted batch
         must be invisible everywhere, so it contributes nothing and the
         per-key reads prove the invisibility. *)
      | History.Batch writes, History.Committed true ->
          List.iter (fun (k, v) -> add k { ev; sem = W v }) (dedup_batch writes)
      | History.Batch _, History.Committed false -> ()
      | _ -> invalid_arg "Linearize: mismatched call/outcome")
    events;
  Hashtbl.fold
    (fun key ops acc ->
      let a = Array.of_list (List.rev ops) in
      Array.sort (fun a b -> compare a.ev.History.inv b.ev.History.inv) a;
      (key, a) :: acc)
    by_key []

(* [step init_present state op] is [Some state'] when [op]'s recorded
   outcome is legal from [state], where [init_present] tells whether the
   key held [init_value] before the history began. *)
let step ~init_value state op =
  match (op.sem, state) with
  | W _, _ -> Some (V_put op.ev.History.op)
  | R None, (V_absent | V_init) ->
      if state = V_init && init_value <> None then None else Some state
  | R (Some v), V_init -> (
      match init_value with
      | Some v0 when Bytes.equal v v0 -> Some state
      | Some _ | None -> None)
  | R (Some _), V_absent -> None
  | R None, V_put _ -> None
  | R (Some _), V_put _ -> None (* resolved by caller with put lookup *)
  | D e, (V_absent | V_init) ->
      let present = state = V_init && init_value <> None in
      if e = present then Some V_absent else None
  | D e, V_put _ -> if e then Some V_absent else None

let check_key ~init key ops =
  let n = Array.length ops in
  let init_value = init key in
  let value_of = Hashtbl.create 16 in
  Array.iter
    (fun op ->
      match op.sem with
      | W v -> Hashtbl.replace value_of op.ev.History.op v
      | R _ | D _ -> ())
    ops;
  let step state op =
    match (op.sem, state) with
    | R (Some v), V_put i ->
        if Bytes.equal v (Hashtbl.find value_of i) then Some state else None
    | _ -> step ~init_value state op
  in
  let linearized = Array.make n false in
  let memo = Hashtbl.create 1024 in
  let encode state =
    let b = Buffer.create (n + 8) in
    Array.iter (fun l -> Buffer.add_char b (if l then '1' else '0')) linearized;
    (match state with
    | V_init -> Buffer.add_string b "i"
    | V_absent -> Buffer.add_string b "a"
    | V_put i -> Buffer.add_string b (string_of_int i));
    Buffer.contents b
  in
  let rec search remaining state =
    if remaining = 0 then true
    else
      let key = encode state in
      if Hashtbl.mem memo key then false
      else begin
        (* An op can linearize next only if its invocation precedes every
           unlinearized response — otherwise some unlinearized op finished
           wholly before it and must come first. *)
        let min_resp = ref max_int in
        for i = 0 to n - 1 do
          if not linearized.(i) then
            min_resp := min !min_resp ops.(i).ev.History.resp
        done;
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let j = !i in
          incr i;
          if (not linearized.(j)) && ops.(j).ev.History.inv < !min_resp then begin
            match step state ops.(j) with
            | Some state' ->
                linearized.(j) <- true;
                if search (remaining - 1) state' then found := true
                else linearized.(j) <- false
            | None -> ()
          end
        done;
        if not !found then Hashtbl.add memo key ();
        !found
      end
  in
  if search n V_init then Ok ()
  else
    Error
      {
        key;
        reason =
          Printf.sprintf
            "no linearization of %d ops on %S is consistent with a \
             sequential map (initial value: %s)"
            n key
            (match init_value with
            | None -> "absent"
            | Some v -> Printf.sprintf "%d bytes" (Bytes.length v));
        ops = Array.to_list (Array.map (fun o -> o.ev) ops);
      }

let check_scans ~init events =
  (* Weak, compositional obligations for scans — kept as a cheap
     pre-filter in front of the strict snapshot check (and as the
     [`Weak] escape hatch): the returned keys must be sorted strictly
     ascending from the start key, at most [count] long, and every
     returned value must have actually been written — by a put that was
     invoked before the scan responded, or by the preload. Membership is
     answered from a per-key put index, so the pass costs
     O(history + Σ items · puts-on-that-key) instead of the old
     O(items × history). *)
  let puts_by_key : (string, (bytes * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter
    (fun e ->
      let add k v =
        Hashtbl.replace puts_by_key k
          ((v, e.History.inv)
          :: Option.value ~default:[] (Hashtbl.find_opt puts_by_key k))
      in
      match (e.History.call, e.History.outcome) with
      | History.Put (k, v), History.Ok_unit -> add k v
      | History.Batch writes, History.Committed true ->
          List.iter (fun (k, v) -> add k v) (dedup_batch writes)
      | _ -> ())
    events;
  let err ev reason = Error { key = ""; reason; ops = [ ev ] } in
  let check_one ev from count items =
    let rec go prev = function
      | [] -> Ok ()
      | (k, v) :: rest ->
          if k < from then err ev (Printf.sprintf "scan returned %S < start %S" k from)
          else if (match prev with Some p -> k <= p | None -> false) then
            err ev (Printf.sprintf "scan keys not strictly ascending at %S" k)
          else begin
            let written =
              List.exists
                (fun (v', inv) ->
                  Bytes.equal v' v && inv < ev.History.resp)
                (Option.value ~default:[] (Hashtbl.find_opt puts_by_key k))
              ||
              match init k with
              | Some v0 -> Bytes.equal v0 v
              | None -> false
            in
            if not written then
              err ev
                (Printf.sprintf "scan returned a value for %S nobody wrote" k)
            else go (Some k) rest
          end
    in
    if List.length items > count then
      err ev
        (Printf.sprintf "scan returned %d items, asked for %d"
           (List.length items) count)
    else go None items
  in
  Array.fold_left
    (fun acc ev ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match (ev.History.call, ev.History.outcome) with
          | History.Scan (from, count), History.Items items ->
              check_one ev from count items
          | _ -> Ok ()))
    (Ok ()) events

(* ---- strict scans: atomic multi-key snapshot reads (§ Wing–Gong
   folding) ----

   The weak conditions above cannot see cross-key anomalies: a scan that
   returns a deleted key's old value, mixes values from incompatible
   points in time, or omits a key that was provably present passes every
   per-item test. The strict check folds each scan into the Wing–Gong
   search as one atomic multi-key read: some single linearization point
   must exist at which the scan's result is exactly the live contents of
   its key range.

   Running the search over the whole history would couple every key and
   destroy the per-key locality that keeps the checker polynomial, so
   the search is restricted to each scan's {e footprint}: the scan
   itself plus the puts/deletes on its returned-or-in-range keys. Keys
   outside every scan's range keep the pure per-key decomposition, and
   gets stay in the per-key search (their constraints do not propagate
   into scan points — a deliberate, documented approximation that keeps
   the state space tractable). Scans whose footprints share a key are
   solved together as one connected component, since they constrain each
   other through that key. *)

type scan_rec = {
  s_ev : History.event;
  s_from : string;
  s_count : int;
  s_returned : (string, bytes) Hashtbl.t;
  s_upper : string option;
      (* inclusive upper end of the covered range: the last returned key
         when the scan filled its count (later keys were legitimately cut
         off), unbounded when it returned fewer than asked *)
  s_covered : bool; (* a count-0 scan covers nothing *)
}

let scan_recs events =
  Array.fold_left
    (fun acc ev ->
      match (ev.History.call, ev.History.outcome) with
      | History.Scan (from, count), History.Items items ->
          let returned = Hashtbl.create (List.length items + 1) in
          List.iter (fun (k, v) -> Hashtbl.replace returned k v) items;
          let n = List.length items in
          let upper =
            if n = count && n > 0 then Some (fst (List.nth items (n - 1)))
            else None
          in
          {
            s_ev = ev;
            s_from = from;
            s_count = count;
            s_returned = returned;
            s_upper = upper;
            s_covered = count > 0;
          }
          :: acc
      | _ -> acc)
    [] events
  |> List.rev

let in_range s k =
  s.s_covered
  && String.compare k s.s_from >= 0
  && (match s.s_upper with
     | None -> true
     | Some u -> String.compare k u <= 0)

(* Puts and deletes only: gets stay in the per-key search, and batch
   writes enter the component as one atomic anchor (below), never as
   independent writes. *)
let writes_by_key events =
  let tbl : (string, op list) Hashtbl.t = Hashtbl.create 64 in
  let add k o =
    Hashtbl.replace tbl k
      (o :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  Array.iter
    (fun ev ->
      match (ev.History.call, ev.History.outcome) with
      | History.Put (k, v), History.Ok_unit -> add k { ev; sem = W v }
      | History.Delete k, History.Existed e -> add k { ev; sem = D e }
      | _ -> ())
    events;
  tbl

(* ---- strict serializability: batches as atomic anchors ----

   A committed 2PC batch is a multi-key write that must take effect at a
   single point. It joins the component search as an {e anchor} exactly
   like a scan: its footprint is its write set, overlapping footprints
   merge into one component, and inside the search it steps every
   written slot at once. Aborted batches never appear. *)

type anchor =
  | A_scan of scan_rec
  | A_batch of History.event * (string * bytes) list

let anchor_ev = function A_scan s -> s.s_ev | A_batch (ev, _) -> ev

let batch_recs events =
  Array.fold_left
    (fun acc ev ->
      match (ev.History.call, ev.History.outcome) with
      | History.Batch writes, History.Committed true ->
          A_batch (ev, dedup_batch writes) :: acc
      | _ -> acc)
    [] events
  |> List.rev

(* A preloaded key no operation ever wrote has constant presence, so it
   must appear in every scan that covers it — checked statically, which
   keeps the preload set (arbitrarily large) out of the search. Needs the
   preload domain to be enumerable, hence [init_keys]. *)
let check_preload_static ~init ~init_keys ~writes scans =
  let rec go = function
    | [] -> Ok ()
    | k :: rest ->
        if init k <> None && not (Hashtbl.mem writes k) then begin
          match
            List.find_opt
              (fun s -> in_range s k && not (Hashtbl.mem s.s_returned k))
              scans
          with
          | Some s ->
              Error
                {
                  key = k;
                  reason =
                    Printf.sprintf
                      "scan missed in-range key %S — preloaded, never \
                       written, so present at every candidate snapshot \
                       point"
                      k;
                  ops = [ s.s_ev ];
                }
          | None -> go rest
        end
        else go rest
  in
  go init_keys

(* Group anchors (scans and committed batches) into connected components
   of overlapping footprints, each with the union of its footprint
   keys. *)
let anchor_components anchors writes =
  let anchors = Array.of_list anchors in
  let n = Array.length anchors in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  let footprints =
    Array.map
      (fun a ->
        let keys = Hashtbl.create 16 in
        (match a with
        | A_scan s ->
            Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) s.s_returned;
            Hashtbl.iter
              (fun k _ -> if in_range s k then Hashtbl.replace keys k ())
              writes
        | A_batch (_, ws) ->
            List.iter (fun (k, _) -> Hashtbl.replace keys k ()) ws);
        keys)
      anchors
  in
  let owner : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i keys ->
      Hashtbl.iter
        (fun k () ->
          match Hashtbl.find_opt owner k with
          | Some j -> union i j
          | None -> Hashtbl.replace owner k i)
        keys)
    footprints;
  let comps : (int, anchor list ref * (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  Array.iteri
    (fun i a ->
      let root = find i in
      let members, keys =
        match Hashtbl.find_opt comps root with
        | Some c -> c
        | None ->
            let c = (ref [], Hashtbl.create 16) in
            Hashtbl.replace comps root c;
            c
      in
      members := a :: !members;
      Hashtbl.iter (fun k () -> Hashtbl.replace keys k ()) footprints.(i))
    anchors;
  Hashtbl.fold
    (fun _root (members, keys) acc ->
      let keys =
        Hashtbl.fold (fun k () l -> k :: l) keys [] |> List.sort compare
      in
      (List.rev !members, Array.of_list keys) :: acc)
    comps []

type comp_op =
  | C_write of op * int (* slot of the written key *)
  | C_scan of scan_rec
  | C_batch of History.event * (int * bytes) list (* (slot, value) list *)

let comp_ev = function
  | C_write (o, _) -> o.ev
  | C_scan s -> s.s_ev
  | C_batch (ev, _) -> ev

(* One Wing–Gong search over a component: state is the whole footprint's
   key -> register map, writes/deletes step their key's slot, and a scan
   linearizes only at a point where its result is exactly the live
   in-range contents. Memoized on (linearized set, state vector) like the
   per-key search. *)
let check_component ~init anchors keys writes =
  let nkeys = Array.length keys in
  let slot_of : (string, int) Hashtbl.t = Hashtbl.create (2 * nkeys) in
  Array.iteri (fun i k -> Hashtbl.replace slot_of k i) keys;
  (* Write identity must be unique per (event, slot): one batch event
     writes several slots, each carrying its own value. *)
  let wid ev slot = (ev.History.op * nkeys) + slot in
  let ops =
    let writes_ops =
      Array.to_list keys
      |> List.concat_map (fun k ->
             Option.value ~default:[] (Hashtbl.find_opt writes k)
             |> List.map (fun o -> C_write (o, Hashtbl.find slot_of k)))
    in
    let anchor_ops =
      List.map
        (function
          | A_scan s -> C_scan s
          | A_batch (ev, ws) ->
              C_batch
                ( ev,
                  List.map
                    (fun (k, v) -> (Hashtbl.find slot_of k, v))
                    ws ))
        anchors
    in
    let a = Array.of_list (writes_ops @ anchor_ops) in
    Array.sort
      (fun a b ->
        compare (comp_ev a).History.inv (comp_ev b).History.inv)
      a;
    a
  in
  let n = Array.length ops in
  let value_of : (int, bytes) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun op ->
      match op with
      | C_write (({ ev; sem = W v } : op), slot) ->
          Hashtbl.replace value_of (wid ev slot) v
      | C_batch (ev, ws) ->
          List.iter
            (fun (slot, v) -> Hashtbl.replace value_of (wid ev slot) v)
            ws
      | C_write _ | C_scan _ -> ())
    ops;
  let states = Array.make nkeys V_init in
  let present slot =
    match states.(slot) with
    | V_put _ -> true
    | V_absent -> false
    | V_init -> init keys.(slot) <> None
  in
  (* Diagnosis for the report: remember the scan rejection seen at the
     deepest point of the search — the most-linearized candidate tells
     the most plausible story about which anomaly broke the snapshot. *)
  let best : (int * string * string * History.event) option ref = ref None in
  let note remaining reason key ev =
    match !best with
    | Some (r, _, _, _) when r <= remaining -> ()
    | _ -> best := Some (remaining, reason, key, ev)
  in
  let scan_at_point remaining s =
    let failure = ref None in
    Hashtbl.iter
      (fun k v ->
        if !failure = None then
          let slot = Hashtbl.find slot_of k in
          match states.(slot) with
          | V_absent ->
              failure :=
                Some
                  ( k,
                    Printf.sprintf
                      "deleted-key ghost: scan returned %S, which is \
                       deleted at the candidate snapshot point"
                      k )
          | V_put i ->
              if not (Bytes.equal (Hashtbl.find value_of i) v) then
                failure :=
                  Some
                    ( k,
                      Printf.sprintf
                        "torn/stale snapshot: the value scanned for %S \
                         belongs to a different point in time than the \
                         rest of the result"
                        k )
          | V_init -> (
              match init k with
              | Some v0 when Bytes.equal v0 v -> ()
              | Some _ ->
                  failure :=
                    Some
                      ( k,
                        Printf.sprintf
                          "torn/stale snapshot: the value scanned for %S \
                           belongs to a different point in time than the \
                           rest of the result"
                          k )
              | None ->
                  failure :=
                    Some
                      ( k,
                        Printf.sprintf
                          "scan returned %S before any write of that \
                           value could have taken effect"
                          k )))
      s.s_returned;
    for slot = 0 to nkeys - 1 do
      if !failure = None then
        let k = keys.(slot) in
        if
          in_range s k
          && (not (Hashtbl.mem s.s_returned k))
          && present slot
        then
          failure :=
            Some
              ( k,
                Printf.sprintf
                  "missing in-range key: %S is live at the candidate \
                   snapshot point and inside the scanned range, but the \
                   scan omitted it"
                  k )
    done;
    match !failure with
    | None -> true
    | Some (k, reason) ->
        note remaining reason k s.s_ev;
        false
  in
  let linearized = Array.make n false in
  let memo = Hashtbl.create 1024 in
  let encode () =
    let b = Buffer.create (n + (2 * nkeys) + 8) in
    Array.iter (fun l -> Buffer.add_char b (if l then '1' else '0')) linearized;
    Array.iter
      (fun st ->
        match st with
        | V_init -> Buffer.add_string b ";i"
        | V_absent -> Buffer.add_string b ";a"
        | V_put i ->
            Buffer.add_char b ';';
            Buffer.add_string b (string_of_int i))
      states;
    Buffer.contents b
  in
  let rec search remaining =
    if remaining = 0 then true
    else
      let key = encode () in
      if Hashtbl.mem memo key then false
      else begin
        let min_resp = ref max_int in
        for i = 0 to n - 1 do
          if not linearized.(i) then
            min_resp := min !min_resp (comp_ev ops.(i)).History.resp
        done;
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let j = !i in
          incr i;
          if
            (not linearized.(j))
            && (comp_ev ops.(j)).History.inv < !min_resp
          then begin
            match ops.(j) with
            | C_write (op, slot) -> (
                let saved = states.(slot) in
                let legal =
                  match op.sem with
                  | W _ ->
                      states.(slot) <- V_put (wid op.ev slot);
                      true
                  | D e ->
                      if e = present slot then begin
                        states.(slot) <- V_absent;
                        true
                      end
                      else false
                  | R _ -> false (* gets never enter a component *)
                in
                if legal then begin
                  linearized.(j) <- true;
                  if search (remaining - 1) then found := true
                  else begin
                    linearized.(j) <- false;
                    states.(slot) <- saved
                  end
                end
                else states.(slot) <- saved)
            | C_batch (ev, ws) ->
                (* All the batch's slots step at one point — this is the
                   atomicity obligation of a committed transaction. *)
                let saved = List.map (fun (slot, _) -> states.(slot)) ws in
                List.iter
                  (fun (slot, _) -> states.(slot) <- V_put (wid ev slot))
                  ws;
                linearized.(j) <- true;
                if search (remaining - 1) then found := true
                else begin
                  linearized.(j) <- false;
                  List.iter2
                    (fun (slot, _) st -> states.(slot) <- st)
                    ws saved
                end
            | C_scan s ->
                if scan_at_point remaining s then begin
                  linearized.(j) <- true;
                  if search (remaining - 1) then found := true
                  else linearized.(j) <- false
                end
          end
        done;
        if not !found then Hashtbl.add memo key ();
        !found
      end
  in
  if search n then Ok ()
  else
    match !best with
    | Some (_, reason, key, scan_ev) ->
        let key_ops =
          Option.value ~default:[] (Hashtbl.find_opt writes key)
          |> List.map (fun o -> o.ev)
          |> List.sort (fun a b -> compare a.History.inv b.History.inv)
        in
        Error
          {
            key;
            reason =
              Printf.sprintf "scan is not an atomic snapshot: %s" reason;
            ops = scan_ev :: key_ops;
          }
    | None ->
        let nscans =
          List.length
            (List.filter (function A_scan _ -> true | _ -> false) anchors)
        and nbatches =
          List.length
            (List.filter (function A_batch _ -> true | _ -> false) anchors)
        in
        Error
          {
            key = "";
            reason =
              Printf.sprintf
                "no linearization of %d writes, %d batches and %d scans \
                 over %d keys admits an atomic point for every scan and \
                 batch"
                (n - nscans - nbatches)
                nbatches nscans nkeys;
            ops = Array.to_list (Array.map comp_ev ops);
          }

let check_scans_strict ~init ~init_keys events =
  let scans = scan_recs events in
  let batches = batch_recs events in
  match (scans, batches) with
  | [], [] -> Ok ()
  | _ -> (
      let writes = writes_by_key events in
      match check_preload_static ~init ~init_keys ~writes scans with
      | Error _ as e -> e
      | Ok () ->
          let anchors = List.map (fun s -> A_scan s) scans @ batches in
          let anchors =
            List.sort
              (fun a b ->
                compare (anchor_ev a).History.inv (anchor_ev b).History.inv)
              anchors
          in
          let rec comps = function
            | [] -> Ok ()
            | (members, keys) :: rest -> (
                match check_component ~init members keys writes with
                | Ok () -> comps rest
                | Error _ as e -> e)
          in
          comps (anchor_components anchors writes))

let check ?(init = fun _ -> None) ?(init_keys = []) ?(scans = `Strict)
    events =
  let rec keys = function
    | [] -> (
        match check_scans ~init events with
        | Error _ as e -> e
        | Ok () -> (
            match scans with
            | `Weak -> Ok ()
            | `Strict -> check_scans_strict ~init ~init_keys events))
    | (key, ops) :: rest -> (
        match check_key ~init key ops with
        | Ok () -> keys rest
        | Error v -> Error v)
  in
  keys (project events)

let pp_violation fmt v =
  (* The violating window in virtual time: from the first involved
     invocation to the last involved response. Points a debugger at the
     slice of the schedule worth replaying. *)
  (match v.ops with
  | [] -> ()
  | ops ->
      let lo =
        List.fold_left
          (fun acc e -> min acc e.History.inv_time)
          infinity ops
      and hi =
        List.fold_left
          (fun acc e -> max acc e.History.resp_time)
          neg_infinity ops
      in
      Format.fprintf fmt "window [%.6fs, %.6fs] " lo hi);
  Format.fprintf fmt "@[<v>%s@,%a@]" v.reason
    (Format.pp_print_list History.pp_event)
    v.ops
