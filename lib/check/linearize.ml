type violation = {
  key : string;
  reason : string;
  ops : History.event list;
}

(* Per-key projection of the history. Linearizability is local (Herlihy &
   Wing): a map history is linearizable iff each key's subhistory is
   linearizable as a single register with put/get/delete semantics, so we
   check one key at a time and the search never sees the cross product of
   unrelated keys' interleavings. *)

type sem =
  | W of bytes (* put *)
  | R of bytes option (* get outcome *)
  | D of bool (* delete outcome: did the key exist *)

type op = { ev : History.event; sem : sem }

(* Register state between linearized ops, kept symbolic so memo entries
   compare in O(1): the value is named by the index of the put that wrote
   it, not by its bytes. [V_init] is distinct from [V_absent] because the
   key may have been preloaded before recording started. *)
type state = V_init | V_absent | V_put of int

let project events =
  let by_key = Hashtbl.create 64 in
  let add key op =
    let cur = Option.value ~default:[] (Hashtbl.find_opt by_key key) in
    Hashtbl.replace by_key key (op :: cur)
  in
  Array.iter
    (fun ev ->
      match (ev.History.call, ev.History.outcome) with
      | History.Put (key, v), History.Ok_unit -> add key { ev; sem = W v }
      | History.Get key, History.Got v -> add key { ev; sem = R v }
      | History.Delete key, History.Existed e -> add key { ev; sem = D e }
      | History.Scan _, _ -> ()
      | _ -> invalid_arg "Linearize: mismatched call/outcome")
    events;
  Hashtbl.fold
    (fun key ops acc ->
      let a = Array.of_list (List.rev ops) in
      Array.sort (fun a b -> compare a.ev.History.inv b.ev.History.inv) a;
      (key, a) :: acc)
    by_key []

(* [step init_present state op] is [Some state'] when [op]'s recorded
   outcome is legal from [state], where [init_present] tells whether the
   key held [init_value] before the history began. *)
let step ~init_value state op =
  match (op.sem, state) with
  | W _, _ -> Some (V_put op.ev.History.op)
  | R None, (V_absent | V_init) ->
      if state = V_init && init_value <> None then None else Some state
  | R (Some v), V_init -> (
      match init_value with
      | Some v0 when Bytes.equal v v0 -> Some state
      | Some _ | None -> None)
  | R (Some _), V_absent -> None
  | R None, V_put _ -> None
  | R (Some _), V_put _ -> None (* resolved by caller with put lookup *)
  | D e, (V_absent | V_init) ->
      let present = state = V_init && init_value <> None in
      if e = present then Some V_absent else None
  | D e, V_put _ -> if e then Some V_absent else None

let check_key ~init key ops =
  let n = Array.length ops in
  let init_value = init key in
  let value_of = Hashtbl.create 16 in
  Array.iter
    (fun op ->
      match op.sem with
      | W v -> Hashtbl.replace value_of op.ev.History.op v
      | R _ | D _ -> ())
    ops;
  let step state op =
    match (op.sem, state) with
    | R (Some v), V_put i ->
        if Bytes.equal v (Hashtbl.find value_of i) then Some state else None
    | _ -> step ~init_value state op
  in
  let linearized = Array.make n false in
  let memo = Hashtbl.create 1024 in
  let encode state =
    let b = Buffer.create (n + 8) in
    Array.iter (fun l -> Buffer.add_char b (if l then '1' else '0')) linearized;
    (match state with
    | V_init -> Buffer.add_string b "i"
    | V_absent -> Buffer.add_string b "a"
    | V_put i -> Buffer.add_string b (string_of_int i));
    Buffer.contents b
  in
  let rec search remaining state =
    if remaining = 0 then true
    else
      let key = encode state in
      if Hashtbl.mem memo key then false
      else begin
        (* An op can linearize next only if its invocation precedes every
           unlinearized response — otherwise some unlinearized op finished
           wholly before it and must come first. *)
        let min_resp = ref max_int in
        for i = 0 to n - 1 do
          if not linearized.(i) then
            min_resp := min !min_resp ops.(i).ev.History.resp
        done;
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let j = !i in
          incr i;
          if (not linearized.(j)) && ops.(j).ev.History.inv < !min_resp then begin
            match step state ops.(j) with
            | Some state' ->
                linearized.(j) <- true;
                if search (remaining - 1) state' then found := true
                else linearized.(j) <- false
            | None -> ()
          end
        done;
        if not !found then Hashtbl.add memo key ();
        !found
      end
  in
  if search n V_init then Ok ()
  else
    Error
      {
        key;
        reason =
          Printf.sprintf
            "no linearization of %d ops on %S is consistent with a \
             sequential map (initial value: %s)"
            n key
            (match init_value with
            | None -> "absent"
            | Some v -> Printf.sprintf "%d bytes" (Bytes.length v));
        ops = Array.to_list (Array.map (fun o -> o.ev) ops);
      }

let check_scans ~init events =
  (* Weaker, compositional obligation for scans (a full linearizability
     check would couple every key): the returned keys must be sorted
     strictly ascending from the start key, at most [count] long, and
     every returned value must have actually been written — by a put that
     was invoked before the scan responded, or by the preload. *)
  let err ev reason = Error { key = ""; reason; ops = [ ev ] } in
  let check_one ev from count items =
    let rec go prev = function
      | [] -> Ok ()
      | (k, v) :: rest ->
          if k < from then err ev (Printf.sprintf "scan returned %S < start %S" k from)
          else if (match prev with Some p -> k <= p | None -> false) then
            err ev (Printf.sprintf "scan keys not strictly ascending at %S" k)
          else begin
            let written =
              Array.exists
                (fun e ->
                  match e.History.call with
                  | History.Put (k', v') ->
                      String.equal k' k
                      && Bytes.equal v' v
                      && e.History.inv < ev.History.resp
                  | _ -> false)
                events
              ||
              match init k with
              | Some v0 -> Bytes.equal v0 v
              | None -> false
            in
            if not written then
              err ev
                (Printf.sprintf "scan returned a value for %S nobody wrote" k)
            else go (Some k) rest
          end
    in
    if List.length items > count then
      err ev
        (Printf.sprintf "scan returned %d items, asked for %d"
           (List.length items) count)
    else go None items
  in
  Array.fold_left
    (fun acc ev ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match (ev.History.call, ev.History.outcome) with
          | History.Scan (from, count), History.Items items ->
              check_one ev from count items
          | _ -> Ok ()))
    (Ok ()) events

let check ?(init = fun _ -> None) events =
  let rec keys = function
    | [] -> check_scans ~init events
    | (key, ops) :: rest -> (
        match check_key ~init key ops with
        | Ok () -> keys rest
        | Error v -> Error v)
  in
  keys (project events)

let pp_violation fmt v =
  (* The violating window in virtual time: from the first involved
     invocation to the last involved response. Points a debugger at the
     slice of the schedule worth replaying. *)
  (match v.ops with
  | [] -> ()
  | ops ->
      let lo =
        List.fold_left
          (fun acc e -> min acc e.History.inv_time)
          infinity ops
      and hi =
        List.fold_left
          (fun acc e -> max acc e.History.resp_time)
          neg_infinity ops
      in
      Format.fprintf fmt "window [%.6fs, %.6fs] " lo hi);
  Format.fprintf fmt "@[<v>%s@,%a@]" v.reason
    (Format.pp_print_list History.pp_event)
    v.ops
