open Prism_sim

type call =
  | Put of string * bytes
  | Get of string
  | Delete of string
  | Scan of string * int
  | Batch of (string * bytes) list

type outcome =
  | Ok_unit
  | Got of bytes option
  | Existed of bool
  | Items of (string * bytes) list
  | Committed of bool

type event = {
  op : int;
  tid : int;
  call : call;
  outcome : outcome;
  inv : int;
  resp : int;
  inv_time : float;
  resp_time : float;
}

type t = {
  mutable events_rev : event list;
  mutable stamp : int;
  mutable count : int;
  mutable enabled : bool;
}

let create () = { events_rev = []; stamp = 0; count = 0; enabled = true }

let set_enabled t on = t.enabled <- on

let tick t =
  let s = t.stamp in
  t.stamp <- s + 1;
  s

(* ---- scheduling labels ----

   A label packs (key id, tid, kind) into one int so the engine can
   carry it on every pending event of an operation. Key identity is an
   interned index into a process-global table: an id is assigned the
   first time a key is seen and never changes, so labels are stable
   across the many runs of one exploration (DPOR caches labels per event
   seq across runs) and the table can answer order queries — a scan's
   label carries its start key, and [conflicting] compares actual key
   strings to decide whether a write falls inside the scanned range.
   Kind 0 is reserved for "unlabelled". *)

let kind_read = 1

let kind_write = 2

let kind_scan = 3

let max_keys = 1 lsl 22

(* The interning tables are process-global and shared by every fleet
   worker domain, so all access goes through [keys_mutex]. Global (as
   opposed to per-domain) numbering is deliberate: labels compare key
   {e ids} for equality and the scan range check compares key {e strings}
   (see [conflicting]), so id-equality coincides with string-equality
   whatever order domains happen to intern keys in — the numbering order
   never reaches any output. *)

let keys_mutex = Mutex.create ()

let key_ids : (string, int) Hashtbl.t = Hashtbl.create 1024

let key_names = ref (Array.make 1024 "")

let n_keys = ref 0

let key_id key =
  Mutex.lock keys_mutex;
  let i =
    match Hashtbl.find_opt key_ids key with
    | Some i -> i
    | None ->
        let i = !n_keys in
        if i >= max_keys then begin
          Mutex.unlock keys_mutex;
          failwith "History: key-label space exhausted (2^22 distinct keys)"
        end;
        if i >= Array.length !key_names then begin
          let bigger = Array.make (2 * Array.length !key_names) "" in
          Array.blit !key_names 0 bigger 0 i;
          key_names := bigger
        end;
        !key_names.(i) <- key;
        Hashtbl.add key_ids key i;
        n_keys := i + 1;
        i
  in
  Mutex.unlock keys_mutex;
  i

let key_of_id i =
  Mutex.lock keys_mutex;
  let name = !key_names.(i) in
  Mutex.unlock keys_mutex;
  name

(* Layout: bits 0-1 kind, bits 2-12 tid+1 (11 bits), bits 13-34 key id,
   bit 35 multi-key batch. The tid field holds tid+1 so an all-zero label
   never aliases a real operation; tids beyond the field width fail
   loudly instead of silently colliding into a shared conflict class. *)

let max_tid = 0x7FF - 1 (* tid+1 must fit in 11 bits *)

let batch_bit = 1 lsl 35

let op_label ~tid call =
  if tid < 0 || tid > max_tid then
    invalid_arg
      (Printf.sprintf "History.op_label: tid %d outside label range [0, %d]"
         tid max_tid);
  let kind, keyh =
    match call with
    | Put (k, _) -> (kind_write, key_id k)
    | Delete k -> (kind_write, key_id k)
    | Get k -> (kind_read, key_id k)
    | Scan (from, _) -> (kind_scan, key_id from)
    | Batch _ -> (kind_write, 0)
  in
  (match call with Batch _ -> batch_bit | _ -> 0)
  lor (keyh lsl 13)
  lor ((tid + 1) lsl 2)
  lor kind

let label_kind l = l land 3

let label_key l = (l lsr 13) land (max_keys - 1)

let conflicting a b =
  if a = 0 || b = 0 then true (* unlabelled: assume the worst *)
  else if a land batch_bit <> 0 || b land batch_bit <> 0 then
    (* A batch touches several keys across shards; its label cannot name
       them all, so it conservatively conflicts with every operation.
       Sound (DPOR explores a superset of necessary interleavings), and
       batches are rare in checker workloads, so the lost pruning is
       contained. *)
    true
  else begin
    let ka = label_kind a and kb = label_kind b in
    (* A scan ranges over keys at or above its start key, so it conflicts
       exactly with writes that could fall inside that range; writes
       strictly below the start key, reads, and other scans commute. The
       upper end of the range is only known once the scan returns, so
       the lower bound is the sound refinement available at labeling
       time. *)
    if ka = kind_scan then
      kb = kind_write
      && String.compare (key_of_id (label_key b)) (key_of_id (label_key a))
         >= 0
    else if kb = kind_scan then
      ka = kind_write
      && String.compare (key_of_id (label_key a)) (key_of_id (label_key b))
         >= 0
    else (ka = kind_write || kb = kind_write) && label_key a = label_key b
  end

let record t ~tid call run =
  if not t.enabled then run ()
  else begin
    let engine = Engine.current () in
    let op = t.count in
    t.count <- op + 1;
    let saved = Engine.annotation engine in
    Engine.annotate engine (op_label ~tid call);
    let inv = tick t in
    let inv_time = Engine.now engine in
    let outcome =
      try run ()
      with e ->
        (* A crash injection unwinding through the operation must not
           leak the op's label onto whatever the interrupted context runs
           next. The op itself never completed, so it carries no
           obligation and is deliberately not recorded. *)
        let bt = Printexc.get_raw_backtrace () in
        Engine.annotate engine saved;
        Printexc.raise_with_backtrace e bt
    in
    let resp = tick t in
    let resp_time = Engine.now engine in
    Engine.annotate engine saved;
    t.events_rev <-
      { op; tid; call; outcome; inv; resp; inv_time; resp_time }
      :: t.events_rev;
    outcome
  end

let unwrap_unit = function
  | Ok_unit -> ()
  | Got _ | Existed _ | Items _ | Committed _ -> assert false

let unwrap_got = function
  | Got v -> v
  | Ok_unit | Existed _ | Items _ | Committed _ -> assert false

let unwrap_existed = function
  | Existed e -> e
  | Ok_unit | Got _ | Items _ | Committed _ -> assert false

let unwrap_items = function
  | Items l -> l
  | Ok_unit | Got _ | Existed _ | Committed _ -> assert false

let unwrap_committed = function
  | Committed c -> c
  | Ok_unit | Got _ | Existed _ | Items _ -> assert false

let wrap t (kv : Prism_harness.Kv.t) =
  {
    kv with
    Prism_harness.Kv.put =
      (fun ~tid key value ->
        unwrap_unit
          (record t ~tid (Put (key, value)) (fun () ->
               kv.Prism_harness.Kv.put ~tid key value;
               Ok_unit)));
    get =
      (fun ~tid key ->
        unwrap_got
          (record t ~tid (Get key) (fun () ->
               Got (kv.Prism_harness.Kv.get ~tid key))));
    delete =
      (fun ~tid key ->
        unwrap_existed
          (record t ~tid (Delete key) (fun () ->
               Existed (kv.Prism_harness.Kv.delete ~tid key))));
    scan =
      (fun ~tid key count ->
        unwrap_items
          (record t ~tid (Scan (key, count)) (fun () ->
               Items (kv.Prism_harness.Kv.scan ~tid key count))));
  }

let record_batch t ~tid writes run =
  unwrap_committed
    (record t ~tid (Batch writes) (fun () -> Committed (run ())))

let events t =
  let a = Array.of_list (List.rev t.events_rev) in
  Array.sort (fun a b -> compare a.inv b.inv) a;
  a

let length t = t.count

let pp_call fmt = function
  | Put (k, v) -> Format.fprintf fmt "put %s (%d B)" k (Bytes.length v)
  | Get k -> Format.fprintf fmt "get %s" k
  | Delete k -> Format.fprintf fmt "delete %s" k
  | Scan (k, n) -> Format.fprintf fmt "scan %s +%d" k n
  | Batch ws ->
      Format.fprintf fmt "batch {%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           (fun fmt (k, v) ->
             Format.fprintf fmt "%s (%d B)" k (Bytes.length v)))
        ws

let pp_outcome fmt = function
  | Ok_unit -> Format.fprintf fmt "ok"
  | Got None -> Format.fprintf fmt "-> None"
  | Got (Some v) -> Format.fprintf fmt "-> Some (%d B)" (Bytes.length v)
  | Existed e -> Format.fprintf fmt "-> existed:%b" e
  | Items l -> Format.fprintf fmt "-> %d items" (List.length l)
  | Committed c -> Format.fprintf fmt "-> committed:%b" c

let pp_event fmt e =
  Format.fprintf fmt "[%d] tid%d %a %a (inv %d@@%.6fs, resp %d@@%.6fs)" e.op
    e.tid pp_call e.call pp_outcome e.outcome e.inv e.inv_time e.resp
    e.resp_time
