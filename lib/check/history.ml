type call =
  | Put of string * bytes
  | Get of string
  | Delete of string
  | Scan of string * int

type outcome =
  | Ok_unit
  | Got of bytes option
  | Existed of bool
  | Items of (string * bytes) list

type event = {
  op : int;
  tid : int;
  call : call;
  outcome : outcome;
  inv : int;
  resp : int;
}

type t = {
  mutable events_rev : event list;
  mutable stamp : int;
  mutable count : int;
  mutable enabled : bool;
}

let create () = { events_rev = []; stamp = 0; count = 0; enabled = true }

let set_enabled t on = t.enabled <- on

let tick t =
  let s = t.stamp in
  t.stamp <- s + 1;
  s

let record t ~tid call run =
  if not t.enabled then run ()
  else begin
    let op = t.count in
    t.count <- op + 1;
    let inv = tick t in
    let outcome = run () in
    let resp = tick t in
    t.events_rev <- { op; tid; call; outcome; inv; resp } :: t.events_rev;
    outcome
  end

let unwrap_unit = function
  | Ok_unit -> ()
  | Got _ | Existed _ | Items _ -> assert false

let unwrap_got = function
  | Got v -> v
  | Ok_unit | Existed _ | Items _ -> assert false

let unwrap_existed = function
  | Existed e -> e
  | Ok_unit | Got _ | Items _ -> assert false

let unwrap_items = function
  | Items l -> l
  | Ok_unit | Got _ | Existed _ -> assert false

let wrap t (kv : Prism_harness.Kv.t) =
  {
    kv with
    Prism_harness.Kv.put =
      (fun ~tid key value ->
        unwrap_unit
          (record t ~tid (Put (key, value)) (fun () ->
               kv.Prism_harness.Kv.put ~tid key value;
               Ok_unit)));
    get =
      (fun ~tid key ->
        unwrap_got
          (record t ~tid (Get key) (fun () ->
               Got (kv.Prism_harness.Kv.get ~tid key))));
    delete =
      (fun ~tid key ->
        unwrap_existed
          (record t ~tid (Delete key) (fun () ->
               Existed (kv.Prism_harness.Kv.delete ~tid key))));
    scan =
      (fun ~tid key count ->
        unwrap_items
          (record t ~tid (Scan (key, count)) (fun () ->
               Items (kv.Prism_harness.Kv.scan ~tid key count))));
  }

let events t =
  let a = Array.of_list (List.rev t.events_rev) in
  Array.sort (fun a b -> compare a.inv b.inv) a;
  a

let length t = t.count

let pp_call fmt = function
  | Put (k, v) -> Format.fprintf fmt "put %s (%d B)" k (Bytes.length v)
  | Get k -> Format.fprintf fmt "get %s" k
  | Delete k -> Format.fprintf fmt "delete %s" k
  | Scan (k, n) -> Format.fprintf fmt "scan %s +%d" k n

let pp_outcome fmt = function
  | Ok_unit -> Format.fprintf fmt "ok"
  | Got None -> Format.fprintf fmt "-> None"
  | Got (Some v) -> Format.fprintf fmt "-> Some (%d B)" (Bytes.length v)
  | Existed e -> Format.fprintf fmt "-> existed:%b" e
  | Items l -> Format.fprintf fmt "-> %d items" (List.length l)

let pp_event fmt e =
  Format.fprintf fmt "[%d] tid%d %a %a (inv %d, resp %d)" e.op e.tid pp_call
    e.call pp_outcome e.outcome e.inv e.resp
