(** RAID-0 striping across several devices (the paper's competitors run on
    NVM/SSD aggregated with mdadm/dm-stripe, §7.1).

    A request at byte offset [off] is split at stripe-unit boundaries and
    the pieces are issued to the owning devices; the request completes when
    the slowest piece does. *)

type t

(** [create ?stripe_unit devices] — default stripe unit is 512 KiB, the
    mdadm default. *)
val create : ?stripe_unit:int -> Model.t list -> t

val devices : t -> Model.t list

(** [submit t dir ~off ~size] books the striped transfer; returns the
    completion time of the whole request. *)
val submit : t -> Model.direction -> off:int -> size:int -> float

(** [access t dir ~off ~size] blocks the calling process until the striped
    request completes. *)
val access : t -> Model.direction -> off:int -> size:int -> unit

(** Aggregate bytes written across all member devices. *)
val bytes_written : t -> int

val bytes_read : t -> int

val reset_stats : t -> unit
