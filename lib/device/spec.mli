(** Storage device characteristics (the paper's Figure 1).

    Bandwidths are bytes/second, latencies are seconds, cost is $/TB,
    endurance is petabytes written over the device's lifetime. *)

type t = {
  name : string;
  read_bw : float;
  write_bw : float;
  read_lat : float;
  write_lat : float;
  cost_per_tb : float;
  endurance_pbw : float;
}

(** SK Hynix DDR4 DRAM: 15/15 GB/s, 0.08 us, $5427/TB. *)
val dram : t

(** Intel Optane DCPMM: 6.8/1.9 GB/s, 0.30/0.09 us, $4096/TB, 292 PBW. *)
val optane_dcpmm : t

(** Intel Optane 905P NVM SSD: 2.6/2.2 GB/s, 10/10 us, $1024/TB. *)
val optane_905p : t

(** Samsung 980 PRO flash SSD (PCIe 4): 7/5 GB/s, 50/20 us, $150/TB,
    0.6 PBW. *)
val samsung_980_pro : t

(** Samsung 980 flash SSD (PCIe 3): 3.5/3 GB/s, 60/20 us, $100/TB. *)
val samsung_980 : t

(** CXL-attached persistent memory (§8 discussion): byte-addressable,
    non-volatile, higher latency than DDR-attached Optane but wide
    bandwidth through PCIe 5 — projected from CXL 2.0 expander data. *)
val cxl_pmem : t

(** All five catalogue rows of Figure 1, in the paper's order. *)
val catalogue : t list

(** [cost_of_gb spec gb] is the dollar cost of [gb] gigabytes on this
    device, used to reproduce the equal-cost configurations of Table 1. *)
val cost_of_gb : t -> float -> float
