(** Timing model of a single storage device.

    The device is a pipeline: requests serialize through a transfer stage at
    the direction's bandwidth, then complete after the direction's access
    latency. Under load, requests queue in the transfer stage, which is what
    produces the bandwidth ceiling and the queueing-driven tail latency the
    paper's Figures 11 and 14 rely on.

    The model also keeps endurance accounting (bytes read/written) used for
    the write-amplification experiment (Figure 12). *)

type direction = Read | Write

type t

(** [create engine spec] attaches a device to a simulation. *)
val create : Prism_sim.Engine.t -> Spec.t -> t

val spec : t -> Spec.t

(** [submit t dir ~size] books a transfer of [size] bytes and returns the
    virtual completion time. Does not block the caller. *)
val submit : t -> direction -> size:int -> float

(** [access t dir ~size] performs a synchronous byte-addressable access:
    blocks the calling process for the device latency plus transfer time.
    Used for NVM and DRAM. Must be called from within a process. *)
val access : t -> direction -> size:int -> unit

(** Total bytes written to the device since creation (or last reset). *)
val bytes_written : t -> int

val bytes_read : t -> int

val reads : t -> int

val writes : t -> int

(** Forget accumulated statistics (not the pipeline state). *)
val reset_stats : t -> unit

(** Current number of requests submitted but not yet completed. *)
val in_flight : t -> int

(** [register_stats t stats ~prefix] publishes the device's accounting as
    gauges ([<prefix>.bytes_read], [.bytes_written], [.reads], [.writes],
    [.in_flight]) in the given registry. *)
val register_stats : t -> Prism_sim.Stats.t -> prefix:string -> unit
