(** io_uring-style asynchronous IO engine over one device.

    Mirrors the kernel interface the paper uses (§5.3): a submission queue
    (SQ) and completion queue (CQ) pair per Value Storage. Submitting a
    batch charges the calling thread the syscall cost plus a per-SQE cost —
    this amortization is exactly why larger batches lower CPU overhead. A
    bounded queue depth models the ring size: submissions block while the
    ring is full.

    Each entry carries an [action] callback executed at completion time —
    the data movement (DMA) happens there, so the payload bytes only become
    visible when the IO really completes. *)

type t

type entry = {
  dir : Model.direction;
  size : int;
  action : unit -> unit;  (** run at completion, before waiters wake *)
}

(** [create engine model ~queue_depth ~cost] builds an SQ/CQ pair. *)
val create :
  Prism_sim.Engine.t -> Model.t -> queue_depth:int -> cost:Cost.t -> t

val queue_depth : t -> int

val model : t -> Model.t

(** [submit t entries] pushes a batch; returns one ivar per entry, filled
    with the entry's completion time. Blocks (in virtual time) while the
    ring lacks room, and charges the submitting thread the amortized
    syscall cost. Must be called from within a process. *)
val submit : t -> entry list -> float Prism_sim.Sync.Ivar.t list

(** [submit_and_wait t entries] submits and blocks until every entry has
    completed; returns the last completion time. *)
val submit_and_wait : t -> entry list -> float

(** Number of entries currently in flight. *)
val in_flight : t -> int

(** True when no request is in flight — the idleness test Prism uses to
    pick a Value Storage for reclamation writes (§5.2). *)
val is_idle : t -> bool

(** Number of [submit] calls so far (submission batches). *)
val submissions : t -> int

(** Total SQEs across all submissions; [sqes_submitted / submissions] is
    the achieved batch size. *)
val sqes_submitted : t -> int

(** [register_stats t stats ~prefix] publishes [<prefix>.submits],
    [<prefix>.sqes] (counters) and [<prefix>.in_flight] (gauge). *)
val register_stats : t -> Prism_sim.Stats.t -> prefix:string -> unit
