(** CPU cost model.

    Today's storage devices are fast enough that the CPU is often the
    bottleneck (paper §3), so the simulation charges virtual CPU time to the
    calling thread for every software operation: syscalls, index traversal,
    hashing, memory copies, lock operations. All costs are in seconds. *)

type t = {
  syscall : float;  (** base cost of a synchronous syscall (read/write) *)
  uring_submit : float;  (** base cost of io_uring_enter *)
  uring_sqe : float;  (** incremental cost per submitted SQE *)
  uring_reap : float;  (** cost to reap one CQE *)
  cache_op : float;  (** hash-table probe / small pointer chase *)
  index_node : float;  (** visiting one DRAM index node *)
  compare_key : float;  (** one key comparison *)
  memcpy_per_byte : float;  (** DRAM copy cost per byte *)
  atomic_op : float;  (** CAS / fetch-and-add *)
  flush_line : float;  (** clwb of one cache line (CPU side) *)
  fence : float;  (** sfence *)
  crc_per_byte : float;  (** checksum cost per byte (LSM blocks) *)
}

(** Default parameters, calibrated to commodity Xeon-class hardware. *)
val default : t

(** [memcpy t n] is the cost of copying [n] bytes through DRAM. *)
val memcpy : t -> int -> float
