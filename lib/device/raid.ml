open Prism_sim

type t = { stripe_unit : int; devices : Model.t array }

let create ?(stripe_unit = 512 * 1024) devices =
  if devices = [] then invalid_arg "Raid.create: no devices";
  if stripe_unit <= 0 then invalid_arg "Raid.create: stripe_unit <= 0";
  { stripe_unit; devices = Array.of_list devices }

let devices t = Array.to_list t.devices

(* Split [off, off+size) at stripe boundaries and issue each piece to the
   device owning that stripe. *)
let submit t dir ~off ~size =
  if off < 0 || size < 0 then invalid_arg "Raid.submit: negative off/size";
  let n = Array.length t.devices in
  let completion = ref 0.0 in
  let remaining = ref size in
  let pos = ref off in
  if size = 0 then begin
    let dev = t.devices.((off / t.stripe_unit) mod n) in
    completion := Model.submit dev dir ~size:0
  end;
  while !remaining > 0 do
    let stripe = !pos / t.stripe_unit in
    let dev = t.devices.(stripe mod n) in
    let stripe_end = (stripe + 1) * t.stripe_unit in
    let piece = min !remaining (stripe_end - !pos) in
    let c = Model.submit dev dir ~size:piece in
    if c > !completion then completion := c;
    pos := !pos + piece;
    remaining := !remaining - piece
  done;
  !completion

let access t dir ~off ~size =
  let completion = submit t dir ~off ~size in
  Engine.delay (Float.max 0.0 (completion -. Engine.current_now ()))

let bytes_written t =
  Array.fold_left (fun acc d -> acc + Model.bytes_written d) 0 t.devices

let bytes_read t =
  Array.fold_left (fun acc d -> acc + Model.bytes_read d) 0 t.devices

let reset_stats t = Array.iter Model.reset_stats t.devices
