open Prism_sim

type entry = { dir : Model.direction; size : int; action : unit -> unit }

type t = {
  engine : Engine.t;
  model : Model.t;
  queue_depth : int;
  cost : Cost.t;
  slots : Sync.Semaphore.t;
  mutable in_flight : int;
  submits : Metric.Counter.t; (* submit calls (batches) *)
  sqes : Metric.Counter.t; (* entries across all submits *)
}

let create engine model ~queue_depth ~cost =
  if queue_depth <= 0 then invalid_arg "Io_uring.create: queue_depth <= 0";
  {
    engine;
    model;
    queue_depth;
    cost;
    slots = Sync.Semaphore.create queue_depth;
    in_flight = 0;
    submits = Metric.Counter.create ();
    sqes = Metric.Counter.create ();
  }

let queue_depth t = t.queue_depth

let model t = t.model

let submit t entries =
  let n = List.length entries in
  if n = 0 then []
  else begin
    Metric.Counter.incr t.submits;
    Metric.Counter.add t.sqes n;
    (* Syscall cost: one io_uring_enter per ring-full of SQEs. *)
    let enters = (n + t.queue_depth - 1) / t.queue_depth in
    Engine.delay
      ((float_of_int enters *. t.cost.Cost.uring_submit)
      +. (float_of_int n *. t.cost.Cost.uring_sqe));
    (* Reserve ring slots one entry at a time: a batch larger than the
       ring drains completions as it goes instead of deadlocking on its
       own occupancy. *)
    List.map
      (fun entry ->
        Sync.Semaphore.acquire t.slots;
        let ivar = Sync.Ivar.create () in
        let completion = Model.submit t.model entry.dir ~size:entry.size in
        t.in_flight <- t.in_flight + 1;
        Engine.schedule t.engine
          ~after:(completion -. Engine.now t.engine)
          (fun () ->
            entry.action ();
            t.in_flight <- t.in_flight - 1;
            Sync.Semaphore.release t.slots;
            Sync.Ivar.fill ivar completion);
        ivar)
      entries
  end

let submit_and_wait t entries =
  let ivars = submit t entries in
  List.fold_left
    (fun acc ivar ->
      let c = Sync.Ivar.read ivar in
      (* Reaping a CQE costs a little CPU. *)
      Engine.delay t.cost.Cost.uring_reap;
      Float.max acc c)
    (Engine.now t.engine) ivars

let in_flight t = t.in_flight

let is_idle t = t.in_flight = 0

let submissions t = Metric.Counter.value t.submits

let sqes_submitted t = Metric.Counter.value t.sqes

let register_stats t stats ~prefix =
  Stats.register_counter stats (prefix ^ ".submits") t.submits;
  Stats.register_counter stats (prefix ^ ".sqes") t.sqes;
  Stats.gauge_int stats (prefix ^ ".in_flight") (fun () -> t.in_flight)
