open Prism_sim

type direction = Read | Write

type t = {
  engine : Engine.t;
  spec : Spec.t;
  mutable busy_until : float;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable reads : int;
  mutable writes : int;
  mutable in_flight : int;
}

let create engine spec =
  {
    engine;
    spec;
    busy_until = 0.0;
    bytes_read = 0;
    bytes_written = 0;
    reads = 0;
    writes = 0;
    in_flight = 0;
  }

let spec t = t.spec

let bandwidth t = function
  | Read -> t.spec.Spec.read_bw
  | Write -> t.spec.Spec.write_bw

let latency t = function
  | Read -> t.spec.Spec.read_lat
  | Write -> t.spec.Spec.write_lat

let note t dir size =
  match dir with
  | Read ->
      t.bytes_read <- t.bytes_read + size;
      t.reads <- t.reads + 1
  | Write ->
      t.bytes_written <- t.bytes_written + size;
      t.writes <- t.writes + 1

let submit t dir ~size =
  if size < 0 then invalid_arg "Model.submit: negative size";
  note t dir size;
  let now = Engine.now t.engine in
  let start = Float.max now t.busy_until in
  let transfer_done = start +. (float_of_int size /. bandwidth t dir) in
  t.busy_until <- transfer_done;
  let completion = transfer_done +. latency t dir in
  t.in_flight <- t.in_flight + 1;
  Engine.schedule t.engine
    ~after:(completion -. now)
    (fun () -> t.in_flight <- t.in_flight - 1);
  completion

let access t dir ~size =
  let completion = submit t dir ~size in
  let wait = completion -. Engine.now t.engine in
  if wait > 0.0 then Engine.delay wait

let bytes_written t = t.bytes_written

let bytes_read t = t.bytes_read

let reads t = t.reads

let writes t = t.writes

let reset_stats t =
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.reads <- 0;
  t.writes <- 0

let in_flight t = t.in_flight

let register_stats t stats ~prefix =
  Stats.gauge_int stats (prefix ^ ".bytes_read") (fun () -> t.bytes_read);
  Stats.gauge_int stats (prefix ^ ".bytes_written") (fun () -> t.bytes_written);
  Stats.gauge_int stats (prefix ^ ".reads") (fun () -> t.reads);
  Stats.gauge_int stats (prefix ^ ".writes") (fun () -> t.writes);
  Stats.gauge_int stats (prefix ^ ".in_flight") (fun () -> t.in_flight)
