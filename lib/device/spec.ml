type t = {
  name : string;
  read_bw : float;
  write_bw : float;
  read_lat : float;
  write_lat : float;
  cost_per_tb : float;
  endurance_pbw : float;
}

let gb = 1e9

let us = 1e-6

let dram =
  {
    name = "DRAM (SK Hynix DDR4)";
    read_bw = 15.0 *. gb;
    write_bw = 15.0 *. gb;
    read_lat = 0.08 *. us;
    write_lat = 0.08 *. us;
    cost_per_tb = 5427.0;
    endurance_pbw = infinity;
  }

let optane_dcpmm =
  {
    name = "NVM (Intel Optane DCPMM)";
    read_bw = 6.8 *. gb;
    write_bw = 1.9 *. gb;
    read_lat = 0.30 *. us;
    write_lat = 0.09 *. us;
    cost_per_tb = 4096.0;
    endurance_pbw = 292.0;
  }

let optane_905p =
  {
    name = "NVM SSD (Intel Optane 905P)";
    read_bw = 2.6 *. gb;
    write_bw = 2.2 *. gb;
    read_lat = 10.0 *. us;
    write_lat = 10.0 *. us;
    cost_per_tb = 1024.0;
    endurance_pbw = 17.5;
  }

let samsung_980_pro =
  {
    name = "Flash SSD (Samsung 980 Pro, PCIe 4)";
    read_bw = 7.0 *. gb;
    write_bw = 5.0 *. gb;
    read_lat = 50.0 *. us;
    write_lat = 20.0 *. us;
    cost_per_tb = 150.0;
    endurance_pbw = 0.6;
  }

let samsung_980 =
  {
    name = "Flash SSD (Samsung 980, PCIe 3)";
    read_bw = 3.5 *. gb;
    write_bw = 3.0 *. gb;
    read_lat = 60.0 *. us;
    write_lat = 20.0 *. us;
    cost_per_tb = 100.0;
    endurance_pbw = 0.6;
  }

let cxl_pmem =
  {
    name = "CXL pmem expander";
    read_bw = 24.0 *. gb;
    write_bw = 12.0 *. gb;
    read_lat = 0.60 *. us;
    write_lat = 0.35 *. us;
    cost_per_tb = 3000.0;
    endurance_pbw = 292.0;
  }

let catalogue = [ dram; optane_dcpmm; optane_905p; samsung_980_pro; samsung_980 ]

let cost_of_gb spec gigabytes = spec.cost_per_tb *. gigabytes /. 1000.0
