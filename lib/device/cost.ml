type t = {
  syscall : float;
  uring_submit : float;
  uring_sqe : float;
  uring_reap : float;
  cache_op : float;
  index_node : float;
  compare_key : float;
  memcpy_per_byte : float;
  atomic_op : float;
  flush_line : float;
  fence : float;
  crc_per_byte : float;
}

let ns = 1e-9

let us = 1e-6

let default =
  {
    syscall = 2.5 *. us;
    uring_submit = 0.8 *. us;
    uring_sqe = 0.10 *. us;
    uring_reap = 0.05 *. us;
    cache_op = 30.0 *. ns;
    index_node = 90.0 *. ns;
    compare_key = 15.0 *. ns;
    memcpy_per_byte = 1.0 /. 15e9;
    atomic_op = 20.0 *. ns;
    flush_line = 60.0 *. ns;
    fence = 30.0 *. ns;
    crc_per_byte = 0.3 *. ns;
  }

let memcpy t n = float_of_int n *. t.memcpy_per_byte
