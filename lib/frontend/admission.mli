(** Admission control and load shedding for the open-loop front-end.

    A policy sees every request twice: once at arrival ({!admit} — accept
    into the queue or shed immediately) and once when a server picks it up
    ({!on_dequeue} — serve it or drop it for having waited too long).
    Policies are pure functions of virtual time and queue state, so a run
    is deterministic.

    Shapes:

    - [Unbounded]: the FIFO baseline — never sheds; past saturation the
      queue and every latency percentile diverge.
    - [Bounded b]: classic tail drop — an arrival finding [b] requests
      queued is shed.
    - [Token_bucket]: admission rate limit — tokens accrue at [rate] per
      virtual second up to [burst]; an arrival without a token is shed.
    - [Codel]: CoDel-style queue-delay shedder (Nichols & Jacobson) — when
      the standing queue delay stays above [target] for [interval], drop
      at dequeue with the [interval / sqrt count] control law until the
      delay is back under [target]. *)

type outcome = Accept | Shed

type spec =
  | Unbounded
  | Bounded of int  (** max queued requests *)
  | Token_bucket of { rate : float; burst : float }
  | Codel of { target : float; interval : float }  (** virtual seconds *)

(** Stable display name: ["unbounded"], ["bounded"], ["token-bucket"],
    ["codel"]. *)
val name : spec -> string

(** Parameters rendered for reports, e.g. ["bounded(512)"]. *)
val describe : spec -> string

(** [of_string ~capacity ~servers s] parses a CLI policy name into a
    spec, deriving defaults from the store's calibrated closed-loop
    capacity (ops per virtual second) and the number of servers draining
    the queue. The scale unit is the service slot [servers / capacity] —
    the virtual time one request occupies one server — so a queue of
    depth [d] costs roughly [d / capacity] of wait:

    - ["unbounded"]
    - ["bounded"] (bound = 25 x servers, >= 16 — about 25 slots of
      queueing delay) or ["bounded=N"]
    - ["token-bucket"] (rate = 0.95 x capacity, burst = 2 x servers)
      or ["token-bucket=RATE"] / ["token-bucket=RATE,BURST"]
    - ["codel"] (target = 5 slots, interval = 20 slots) or
      ["codel=TARGET_US,INTERVAL_US"] *)
val of_string :
  capacity:float -> servers:int -> string -> (spec, string) result

(** Mutable policy state for one run. *)
type t

val create : spec -> t

val spec : t -> spec

(** [admit t ~now ~depth] decides whether an arrival joins the queue
    ([depth] requests currently waiting). *)
val admit : t -> now:float -> depth:int -> outcome

(** [on_dequeue t ~now ~wait ~depth] decides whether a request that
    waited [wait] virtual seconds is served or dropped; [depth] is the
    queue length after removing it. *)
val on_dequeue : t -> now:float -> wait:float -> depth:int -> outcome
