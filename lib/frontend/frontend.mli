(** Open-loop front-end: a request queue with admission control between an
    arrival process and any {!Prism_harness.Kv.t}.

    Closed-loop drivers ({!Prism_harness.Runner}) can never push a store
    past saturation — each simulated client waits for its own op. Here
    requests instead arrive on their own schedule (each arrival is one
    logical connection's request, so a rate of hundreds of thousands per
    second stands in for tens of thousands of concurrent clients), join a
    FIFO queue guarded by an {!Admission} policy, and are drained by a
    fixed pool of server processes. Past the saturation knee the queue —
    not the store — owns the tail, which is exactly the regime knee
    curves measure.

    Telemetry (all in the engine's {!Prism_sim.Stats} registry, under a
    [prefix] defaulting to ["frontend"]):

    - counters [<p>.offered], [<p>.accepted], [<p>.shed.admission],
      [<p>.shed.dequeue], [<p>.completed]
    - histograms [<p>.wait], [<p>.service], [<p>.sojourn] (nanoseconds)
      and [<p>.queue.depth] (depth observed by each arrival)
    - timelines [<p>.goodput] (one tick per completion) and [<p>.shed]
      (one tick per shed)
    - gauge [<p>.queue.depth.live]

    Queue waits are additionally recorded into the store's
    ["kv.<prefix>.<op>.wait"] histograms ({!Prism_harness.Kv.wait_histogram}),
    so a knee curve can attribute tail growth to queueing vs the store. *)

type result = {
  store : string;
  policy : string;  (** [Admission.describe] of the policy *)
  offered_rate : float;  (** requests per virtual second, long-run mean *)
  offered : int;  (** arrivals generated *)
  accepted : int;  (** admitted to the queue *)
  shed_admission : int;  (** shed on arrival (bound / token bucket) *)
  shed_dequeue : int;  (** dropped at dequeue (CoDel) *)
  completed : int;
  max_depth : int;  (** deepest queue any arrival observed *)
  duration : float;  (** arrival window: first to last arrival, virtual s *)
  elapsed : float;  (** first arrival to last completion, virtual s *)
  goodput : float;  (** completed / elapsed, ops per virtual second *)
  wait : Prism_sim.Hist.t;  (** queue wait of served requests, ns *)
  service : Prism_sim.Hist.t;  (** store service time, ns *)
  sojourn : Prism_sim.Hist.t;  (** end-to-end wait + service, ns *)
}

(** Total shed, both flavours. *)
val shed : result -> int

(** [shed / offered]; 0 when nothing was offered. *)
val shed_rate : result -> float

val pp_result : Format.formatter -> result -> unit

(** [run engine kv ~policy ~offered_rate ~trace] replays an arrival-time
    stamped trace (see {!Prism_workload.Trace.record_timed}) open-loop
    against [kv]: a generator process releases each request at its stamp,
    [servers] worker processes drain the queue. Runs the engine to
    completion of all accepted requests. [offered_rate] is recorded in
    the result for labelling (use {!Arrival.mean_rate}).

    Determinism: everything downstream of the trace is a pure function of
    the engine schedule, so the same seed reproduces the identical
    result. *)
val run :
  ?prefix:string ->
  ?servers:int ->
  Prism_sim.Engine.t ->
  Prism_harness.Kv.t ->
  policy:Admission.spec ->
  offered_rate:float ->
  trace:Prism_workload.Trace.timed array ->
  result
