open Prism_sim
open Prism_workload
open Prism_harness

type result = {
  store : string;
  policy : string;
  offered_rate : float;
  offered : int;
  accepted : int;
  shed_admission : int;
  shed_dequeue : int;
  completed : int;
  max_depth : int;
  duration : float;
  elapsed : float;
  goodput : float;
  wait : Hist.t;
  service : Hist.t;
  sojourn : Hist.t;
}

let shed r = r.shed_admission + r.shed_dequeue

let shed_rate r =
  if r.offered = 0 then 0.0 else float_of_int (shed r) /. float_of_int r.offered

let pp_result fmt r =
  Format.fprintf fmt
    "%-12s %-22s offered %8.0f/s -> goodput %8.0f/s  shed %5.1f%%  depth<=%-6d \
     p50 %7.1fus p99 %8.1fus p999 %9.1fus"
    r.store r.policy r.offered_rate r.goodput
    (100.0 *. shed_rate r)
    r.max_depth
    (Hist.us_of_ns (Hist.quantile r.sojourn 50.0))
    (Hist.us_of_ns (Hist.quantile r.sojourn 99.0))
    (Hist.us_of_ns (Hist.quantile r.sojourn 99.9))

type item = Req of float * Trace.op (* arrival time, op *) | Poison

let run ?(prefix = "frontend") ?(servers = 16) engine kv ~policy ~offered_rate
    ~trace =
  if servers <= 0 then invalid_arg "Frontend.run: servers must be positive";
  let ops = Array.length trace in
  if ops = 0 then invalid_arg "Frontend.run: empty trace";
  let reg = Engine.stats engine in
  let pol = Admission.create policy in
  let mb : item Sync.Mailbox.t = Sync.Mailbox.create () in
  (* Result histograms are registered under the front-end prefix, so one
     object feeds both the returned result and the JSON export. *)
  let wait = Hist.create () and service = Hist.create () in
  let sojourn = Hist.create () and depth_hist = Hist.create () in
  Stats.register_histogram reg (prefix ^ ".wait") wait;
  Stats.register_histogram reg (prefix ^ ".service") service;
  Stats.register_histogram reg (prefix ^ ".sojourn") sojourn;
  Stats.register_histogram reg (prefix ^ ".queue.depth") depth_hist;
  Stats.gauge_int reg (prefix ^ ".queue.depth.live") (fun () ->
      Sync.Mailbox.length mb);
  let offered = Stats.counter reg (prefix ^ ".offered") in
  let accepted = Stats.counter reg (prefix ^ ".accepted") in
  let shed_admission = Stats.counter reg (prefix ^ ".shed.admission") in
  let shed_dequeue = Stats.counter reg (prefix ^ ".shed.dequeue") in
  let completed = Stats.counter reg (prefix ^ ".completed") in
  let duration = trace.(ops - 1).Trace.at in
  let tl_interval = Float.max 1e-4 (duration /. 100.0) in
  let tl_goodput = Stats.timeline reg (prefix ^ ".goodput") ~interval:tl_interval in
  let tl_shed = Stats.timeline reg (prefix ^ ".shed") ~interval:tl_interval in
  let kv_wait kind = Kv.wait_histogram engine kv kind in
  let w_put = kv_wait Kv.Put and w_get = kv_wait Kv.Get in
  let w_delete = kv_wait Kv.Delete and w_scan = kv_wait Kv.Scan in
  let max_depth = ref 0 in
  let first_arrival = ref nan in
  let last_completion = ref nan in
  (* Generator: one process releases each request at its arrival stamp and
     runs the admission decision; accepted requests join the FIFO queue. *)
  Engine.spawn engine (fun () ->
      let prev = ref 0.0 in
      Array.iter
        (fun { Trace.at; op } ->
          Engine.delay (at -. !prev);
          prev := at;
          let now = Engine.now engine in
          if Float.is_nan !first_arrival then first_arrival := now;
          let depth = Sync.Mailbox.length mb in
          Metric.Counter.incr offered;
          Hist.record depth_hist depth;
          match Admission.admit pol ~now ~depth with
          | Admission.Shed ->
              Metric.Counter.incr shed_admission;
              Metric.Timeline.tick tl_shed ~now
          | Admission.Accept ->
              Metric.Counter.incr accepted;
              Sync.Mailbox.send mb (Req (now, op));
              if depth + 1 > !max_depth then max_depth := depth + 1)
        trace;
      (* FIFO: the poison pills sort behind every accepted request, so
         each server drains its share of the queue before exiting. *)
      for _ = 1 to servers do
        Sync.Mailbox.send mb Poison
      done);
  let latch = Sync.Latch.create servers in
  for tid = 0 to servers - 1 do
    Engine.spawn engine (fun () ->
        let rec serve () =
          match Sync.Mailbox.recv mb with
          | Poison -> Sync.Latch.arrive latch
          | Req (arrived, op) -> (
              let now = Engine.now engine in
              let wait_s = now -. arrived in
              match
                Admission.on_dequeue pol ~now ~wait:wait_s
                  ~depth:(Sync.Mailbox.length mb)
              with
              | Admission.Shed ->
                  Metric.Counter.incr shed_dequeue;
                  Metric.Timeline.tick tl_shed ~now;
                  serve ()
              | Admission.Accept ->
                  Hist.record_span wait wait_s;
                  (match op with
                  | Trace.Delete k ->
                      Hist.record_span w_delete wait_s;
                      ignore (kv.Kv.delete ~tid k)
                  | op -> (
                      match Trace.materialize op with
                      | Ycsb.Read k ->
                          Hist.record_span w_get wait_s;
                          ignore (kv.Kv.get ~tid k)
                      | Ycsb.Update (k, v) | Ycsb.Insert (k, v) ->
                          Hist.record_span w_put wait_s;
                          kv.Kv.put ~tid k v
                      | Ycsb.Scan (k, n) ->
                          Hist.record_span w_scan wait_s;
                          ignore (kv.Kv.scan ~tid k n)));
                  let done_at = Engine.now engine in
                  Hist.record_span service (done_at -. now);
                  Hist.record_span sojourn (done_at -. arrived);
                  Metric.Counter.incr completed;
                  Metric.Timeline.tick tl_goodput ~now:done_at;
                  last_completion := done_at;
                  serve ())
        in
        serve ())
  done;
  Engine.spawn engine (fun () ->
      Sync.Latch.wait latch;
      kv.Kv.quiesce ();
      Engine.stop engine);
  ignore (Engine.run engine);
  let n_completed = Metric.Counter.value completed in
  if
    n_completed + Metric.Counter.value shed_admission
    + Metric.Counter.value shed_dequeue
    <> ops
  then failwith "Frontend.run: requests lost (deadlock or missing poison)";
  let elapsed =
    if n_completed = 0 then 0.0 else !last_completion -. !first_arrival
  in
  {
    store = kv.Kv.name;
    policy = Admission.describe policy;
    offered_rate;
    offered = Metric.Counter.value offered;
    accepted = Metric.Counter.value accepted;
    shed_admission = Metric.Counter.value shed_admission;
    shed_dequeue = Metric.Counter.value shed_dequeue;
    completed = n_completed;
    max_depth = !max_depth;
    duration;
    elapsed;
    goodput = (if elapsed > 0.0 then float_of_int n_completed /. elapsed else 0.0);
    wait;
    service;
    sojourn;
  }
