open Prism_sim

type shape =
  | Poisson of { rate : float }
  | Mmpp of {
      rate_low : float;
      rate_high : float;
      dwell_low : float;
      dwell_high : float;
      mutable high : bool;
      mutable dwell_left : float; (* virtual seconds left in current state *)
    }
  | Diurnal of {
      base_rate : float;
      peak_rate : float;
      period : float;
      mutable clock : float; (* absolute virtual time of the last arrival *)
    }

type t = { shape : shape; rng : Rng.t }

let poisson ~rate rng =
  if rate <= 0.0 then invalid_arg "Arrival.poisson: rate must be positive";
  { shape = Poisson { rate }; rng }

let mmpp ~rate_low ~rate_high ~dwell_low ~dwell_high rng =
  if rate_low <= 0.0 || rate_high <= 0.0 then
    invalid_arg "Arrival.mmpp: rates must be positive";
  if dwell_low <= 0.0 || dwell_high <= 0.0 then
    invalid_arg "Arrival.mmpp: dwell times must be positive";
  let dwell_left = Rng.exponential rng ~mean:dwell_low in
  {
    shape = Mmpp { rate_low; rate_high; dwell_low; dwell_high; high = false; dwell_left };
    rng;
  }

let diurnal ~base_rate ~peak_rate ~period rng =
  if base_rate <= 0.0 || peak_rate < base_rate then
    invalid_arg "Arrival.diurnal: need 0 < base_rate <= peak_rate";
  if period <= 0.0 then invalid_arg "Arrival.diurnal: period must be positive";
  { shape = Diurnal { base_rate; peak_rate; period; clock = 0.0 }; rng }

let two_pi = 8.0 *. atan 1.0

let next_gap t =
  match t.shape with
  | Poisson { rate } -> Rng.exponential t.rng ~mean:(1.0 /. rate)
  | Mmpp m ->
      (* Accumulate time across state flips until an arrival lands inside
         the current state's remaining dwell. *)
      let gap = ref 0.0 in
      let finished = ref false in
      while not !finished do
        let rate = if m.high then m.rate_high else m.rate_low in
        let candidate = Rng.exponential t.rng ~mean:(1.0 /. rate) in
        if candidate <= m.dwell_left then begin
          m.dwell_left <- m.dwell_left -. candidate;
          gap := !gap +. candidate;
          finished := true
        end
        else begin
          gap := !gap +. m.dwell_left;
          m.high <- not m.high;
          m.dwell_left <-
            Rng.exponential t.rng
              ~mean:(if m.high then m.dwell_high else m.dwell_low)
        end
      done;
      !gap
  | Diurnal d ->
      (* Lewis–Shedler thinning against the constant majorant [peak_rate]:
         candidate arrivals at the peak rate are accepted with probability
         rate(t)/peak, yielding a nonhomogeneous Poisson process. *)
      let gap = ref 0.0 in
      let finished = ref false in
      while not !finished do
        gap := !gap +. Rng.exponential t.rng ~mean:(1.0 /. d.peak_rate);
        let at = d.clock +. !gap in
        let phase = at /. d.period in
        let u = phase -. Float.of_int (int_of_float phase) in
        let rate =
          d.base_rate
          +. ((d.peak_rate -. d.base_rate) *. (1.0 -. cos (two_pi *. u)) /. 2.0)
        in
        if Rng.float t.rng < rate /. d.peak_rate then begin
          d.clock <- at;
          finished := true
        end
      done;
      !gap

let mean_rate t =
  match t.shape with
  | Poisson { rate } -> rate
  | Mmpp { rate_low; rate_high; dwell_low; dwell_high; _ } ->
      ((rate_low *. dwell_low) +. (rate_high *. dwell_high))
      /. (dwell_low +. dwell_high)
  | Diurnal { base_rate; peak_rate; _ } -> (base_rate +. peak_rate) /. 2.0

let name t =
  match t.shape with
  | Poisson _ -> "poisson"
  | Mmpp _ -> "mmpp"
  | Diurnal _ -> "diurnal"

let schedule t ~n =
  let times = Array.make n 0.0 in
  let clock = ref 0.0 in
  for i = 0 to n - 1 do
    clock := !clock +. next_gap t;
    times.(i) <- !clock
  done;
  times
