type outcome = Accept | Shed

type spec =
  | Unbounded
  | Bounded of int
  | Token_bucket of { rate : float; burst : float }
  | Codel of { target : float; interval : float }

let name = function
  | Unbounded -> "unbounded"
  | Bounded _ -> "bounded"
  | Token_bucket _ -> "token-bucket"
  | Codel _ -> "codel"

let describe = function
  | Unbounded -> "unbounded"
  | Bounded b -> Printf.sprintf "bounded(%d)" b
  | Token_bucket { rate; burst } ->
      Printf.sprintf "token-bucket(%.0f/s,burst %.0f)" rate burst
  | Codel { target; interval } ->
      Printf.sprintf "codel(%.0fus,%.0fus)" (target *. 1e6) (interval *. 1e6)

let of_string ~capacity ~servers s =
  (* Defaults scale with the store through its service slot — the virtual
     time one request occupies one server, [servers / capacity] — so one
     flag works across stores whose speeds differ by an order of
     magnitude. A queue of depth d costs ~d/capacity of wait, so depth
     budgets are multiples of [servers] and delay budgets multiples of
     the slot. *)
  let slot = float_of_int servers /. Float.max 1.0 capacity in
  let split_params v =
    String.split_on_char ',' v |> List.map float_of_string_opt
  in
  match String.split_on_char '=' (String.lowercase_ascii (String.trim s)) with
  | [ "unbounded" ] -> Ok Unbounded
  | [ "bounded" ] ->
      (* ~25 service slots of queueing delay at full drain rate. *)
      Ok (Bounded (max 16 (25 * servers)))
  | [ "bounded"; v ] -> (
      match int_of_string_opt v with
      | Some b when b > 0 -> Ok (Bounded b)
      | _ -> Error (Printf.sprintf "bounded=%s: positive integer expected" v))
  | [ "token-bucket" ] ->
      Ok
        (Token_bucket
           {
             rate = 0.95 *. capacity;
             burst = Float.max 8.0 (float_of_int (2 * servers));
           })
  | [ "token-bucket"; v ] -> (
      match split_params v with
      | [ Some rate ] when rate > 0.0 ->
          Ok
            (Token_bucket
               { rate; burst = Float.max 8.0 (float_of_int (2 * servers)) })
      | [ Some rate; Some burst ] when rate > 0.0 && burst >= 1.0 ->
          Ok (Token_bucket { rate; burst })
      | _ -> Error (Printf.sprintf "token-bucket=%s: RATE or RATE,BURST expected" v))
  | [ "codel" ] -> Ok (Codel { target = 5.0 *. slot; interval = 20.0 *. slot })
  | [ "codel"; v ] -> (
      match split_params v with
      | [ Some target_us; Some interval_us ] when target_us > 0.0 && interval_us > 0.0 ->
          Ok (Codel { target = target_us *. 1e-6; interval = interval_us *. 1e-6 })
      | _ -> Error (Printf.sprintf "codel=%s: TARGET_US,INTERVAL_US expected" v))
  | _ ->
      Error
        (Printf.sprintf
           "unknown policy %S (unbounded | bounded[=N] | token-bucket[=RATE[,BURST]] \
            | codel[=TARGET_US,INTERVAL_US])"
           s)

type state =
  | S_pass
  | S_bounded of int
  | S_bucket of {
      rate : float;
      burst : float;
      mutable tokens : float;
      mutable last : float; (* virtual time of the last refill *)
    }
  | S_codel of {
      target : float;
      interval : float;
      mutable first_above : float; (* 0.0 = delay not persistently above target *)
      mutable dropping : bool;
      mutable drop_next : float;
      mutable drop_count : int;
    }

type t = { spec : spec; state : state }

let create spec =
  let state =
    match spec with
    | Unbounded -> S_pass
    | Bounded b -> S_bounded b
    | Token_bucket { rate; burst } ->
        S_bucket { rate; burst; tokens = burst; last = 0.0 }
    | Codel { target; interval } ->
        S_codel
          {
            target;
            interval;
            first_above = 0.0;
            dropping = false;
            drop_next = 0.0;
            drop_count = 0;
          }
  in
  { spec; state }

let spec t = t.spec

let admit t ~now ~depth =
  match t.state with
  | S_pass | S_codel _ -> Accept
  | S_bounded b -> if depth >= b then Shed else Accept
  | S_bucket k ->
      k.tokens <- Float.min k.burst (k.tokens +. ((now -. k.last) *. k.rate));
      k.last <- now;
      if k.tokens >= 1.0 then begin
        k.tokens <- k.tokens -. 1.0;
        Accept
      end
      else Shed

let on_dequeue t ~now ~wait ~depth =
  match t.state with
  | S_pass | S_bounded _ | S_bucket _ -> Accept
  | S_codel c ->
      if wait < c.target || depth = 0 then begin
        (* Standing delay is back under target (or the queue drained):
           leave the dropping state entirely, control-law memory
           included — re-entering congestion later (e.g. in the next
           scenario phase) must behave exactly like a fresh policy, with
           a full interval of grace and drop spacing restarted from 1. *)
        c.first_above <- 0.0;
        c.dropping <- false;
        c.drop_next <- 0.0;
        c.drop_count <- 0;
        Accept
      end
      else if c.first_above = 0.0 then begin
        (* Delay just crossed target: give it one interval to subside. *)
        c.first_above <- now +. c.interval;
        Accept
      end
      else if not c.dropping then
        if now >= c.first_above then begin
          (* Above target for a full interval: start dropping. *)
          c.dropping <- true;
          c.drop_count <- 1;
          c.drop_next <- now +. c.interval;
          Shed
        end
        else Accept
      else if now >= c.drop_next then begin
        (* Control law: drop spacing shrinks as interval / sqrt(count). *)
        c.drop_count <- c.drop_count + 1;
        c.drop_next <-
          now +. (c.interval /. sqrt (float_of_int c.drop_count));
        Shed
      end
      else Accept
